"""Configuration of the cohort execution engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from .executors import EXECUTORS
from .faults import FaultConfig


class QuorumNotMetError(RuntimeError):
    """Too few clients survived the round for the completion policy.

    The enclave refuses to aggregate and release: the round is aborted
    with the global model unchanged and no privacy budget consumed
    (nothing data-dependent left the enclave).
    """


@dataclass(frozen=True)
class RuntimeConfig:
    """How the sampled cohort is executed each round.

    ``client_timeout_s`` bounds how long the coordinator waits on any
    single client: injected straggler delays beyond it are dropped
    *analytically* (no wall clock spent, and deterministically -- the
    delay is part of the fault plan), while genuine non-completion is
    retried then dropped.  ``min_quorum`` is the fraction of the
    *sampled* cohort that must survive decryption for the enclave to
    aggregate and release; below it the round aborts with
    :class:`QuorumNotMetError`.

    ``realized_accounting`` selects whether the DP accountant charges
    each round at the realized cohort fraction (survivors / N) instead
    of the configured sampling rate; ``None`` (default) enables it
    exactly when fault injection is active, keeping fault-free
    deployments on the paper's fixed-q accounting.

    ``vector_chunk`` bounds how many clients the ``vectorized``
    executor stacks into one tensor batch -- peak memory grows with
    ``chunk * d`` while throughput saturates well below the default,
    so mega-cohorts stream through in constant space.  Ignored by the
    loop executors.
    """

    executor: str = "serial"
    workers: int = 4
    vector_chunk: int = 8192
    client_timeout_s: float | None = None
    max_retries: int = 2
    backoff_base_s: float = 0.01
    backoff_cap_s: float = 1.0
    min_quorum: float = 0.0
    faults: FaultConfig = field(default_factory=FaultConfig)
    realized_accounting: bool | None = None

    def __post_init__(self) -> None:
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r} (choose from {EXECUTORS})"
            )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.vector_chunk < 1:
            raise ValueError("vector_chunk must be >= 1")
        if not 0.0 <= self.min_quorum <= 1.0:
            raise ValueError("min_quorum must be in [0, 1]")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff seconds must be >= 0")
        if self.client_timeout_s is not None and self.client_timeout_s <= 0:
            raise ValueError("client_timeout_s must be positive when set")

    def use_realized_accounting(self) -> bool:
        """Resolve the ``realized_accounting`` tri-state."""
        if self.realized_accounting is not None:
            return self.realized_accounting
        return self.faults.active
