"""The unit of cohort work: one client's local round, self-contained.

A :class:`ClientJob` carries everything needed to reproduce one
client's contribution -- identity ``(round, client)``, the training
hyperparameters, and the base entropy -- but never live RNG state.
:func:`execute_client_job` derives all randomness from the job's
identity (see :mod:`repro.runtime.seeding`), clones the worker's model
template, trains on the worker's shard table, and returns either the
sealed ciphertext (enclave mode) or the plain sparse update
(reference-simulation mode).  Because the function is a pure function
of ``(context, job)``, it can run on any executor, any worker, any
number of times (retries), and produce the same bits.

Jobs and results are plain picklable dataclasses so the process
executor can ship them across the fork boundary; the worker-resident
state (model template, client shards, broadcast weights) lives in a
:class:`WorkerContext` installed once per worker.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .. import obs
from ..fl.client import (
    LocalUpdate,
    TrainingConfig,
    compute_update,
    compute_updates_batch,
)
from ..fl.datasets import ClientData
from ..fl.models import Dropout, Sequential
from ..sgx import crypto
from .seeding import (
    STREAM_MODEL,
    STREAM_TRAIN,
    derive_nonce,
    derive_nonces_batch,
    derive_rng,
    derive_rngs_batch,
    reseed_model,
)


class TransientWorkerError(RuntimeError):
    """An injected (or real) transient execution failure; retryable."""


@dataclass
class WorkerContext:
    """Per-worker state shared by every job the worker executes.

    ``weights`` is the broadcast global model for the current round: a
    plain array for in-process executors, a shared-memory view for the
    process executor (zero-copy across workers).  Jobs treat it as
    read-only.
    """

    model: Sequential
    clients: dict[int, ClientData]
    weights: np.ndarray
    extras: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ClientJob:
    """One client's work order for one round."""

    round_index: int
    client_id: int
    entropy: int
    training: TrainingConfig
    clip: float | None = None
    quantize_bits: int | None = None
    key: bytes | None = None      # seal the update when set (enclave mode)
    delay_s: float = 0.0          # injected straggler latency, slept in-job
    fail_attempts: int = 0        # attempts < fail_attempts raise transiently
    attempt: int = 0
    # Flight recorder: the coordinator's open round span, so the
    # worker-side client span joins the same trace even across a fork.
    trace_ctx: obs.TraceContext | None = None


@dataclass(frozen=True)
class ClientJobResult:
    """What one client upload produced."""

    client_id: int
    round_index: int
    ciphertext: crypto.Ciphertext | None
    indices: np.ndarray | None    # plain mode only (no key)
    values: np.ndarray | None
    upload_bytes: int
    train_seconds: float
    attempt: int

    def to_update(self) -> LocalUpdate:
        """The plain-mode sparse update (enclave mode decrypts instead)."""
        if self.indices is None or self.values is None:
            raise ValueError("sealed result: decrypt through the enclave")
        return LocalUpdate(client_id=self.client_id,
                           indices=self.indices, values=self.values)


@dataclass(frozen=True)
class TrainTask:
    """A generic local-training replay task (attack teacher, ablations).

    Unlike :class:`ClientJob` it carries its own start weights (teacher
    replay starts from a different ``theta^t`` per round) and a free-form
    ``seed_key`` identifying the task in the derivation namespace.
    """

    seed_key: tuple[int, ...]     # e.g. (round, label, shard)
    stream: int
    entropy: int
    weights: np.ndarray
    x: np.ndarray
    y: np.ndarray
    training: TrainingConfig


def _train_once(
    model_template: Sequential,
    weights: np.ndarray,
    data: ClientData,
    training: TrainingConfig,
    entropy: int,
    stream_train: int,
    stream_model: int,
    key_parts: tuple[int, ...],
    clip: float | None = None,
) -> LocalUpdate:
    """Clone the template, re-key its randomness, run one local round."""
    model = copy.deepcopy(model_template)
    reseed_model(model, entropy, stream_model, *key_parts)
    rng = derive_rng(entropy, stream_train, *key_parts)
    return compute_update(model, weights, data, training, rng,
                          clip_override=clip)


def execute_client_job(ctx: WorkerContext, job: ClientJob) -> ClientJobResult:
    """Run one client job inside a worker; pure in ``(ctx, job)``.

    Raises :class:`TransientWorkerError` while the injected failure
    budget is unspent -- the coordinator retries with backoff and the
    successful attempt returns bits identical to a never-failed run
    (the derivation ignores ``attempt``).
    """
    with obs.span("client", parent=job.trace_ctx, client=job.client_id,
                  attempt=job.attempt):
        return _execute_client_job(ctx, job)


def _execute_client_job(ctx: WorkerContext, job: ClientJob) -> ClientJobResult:
    if job.attempt < job.fail_attempts:
        raise TransientWorkerError(
            f"injected transient failure for client {job.client_id} "
            f"(attempt {job.attempt}/{job.fail_attempts})"
        )
    if job.delay_s > 0.0:
        time.sleep(job.delay_s)
    t0 = time.perf_counter()
    data = ctx.clients[job.client_id]
    update = _train_once(
        ctx.model, ctx.weights, data, job.training, job.entropy,
        STREAM_TRAIN, STREAM_MODEL, (job.round_index, job.client_id),
        clip=job.clip,
    )
    train_seconds = time.perf_counter() - t0
    obs.observe("runtime.train_s", train_seconds)

    if job.key is None:
        return ClientJobResult(
            client_id=job.client_id, round_index=job.round_index,
            ciphertext=None, indices=update.indices, values=update.values,
            upload_bytes=0, train_seconds=train_seconds, attempt=job.attempt,
        )

    if job.quantize_bits is not None:
        from ..fl.quantize import quantize_stochastic

        # Quantization draws from its own sub-stream of the client's
        # identity so the dither is executor- and retry-invariant too.
        q_rng = derive_rng(job.entropy, STREAM_TRAIN,
                           job.round_index, job.client_id, 1)
        q = quantize_stochastic(update, job.quantize_bits, q_rng)
        payload = crypto.encode_quantized_gradient(q.indices, q.levels, q.scale)
    else:
        payload = crypto.encode_sparse_gradient(update.indices, update.values)
    nonce = derive_nonce(job.entropy, job.round_index, job.client_id)
    ciphertext = crypto.seal(job.key, payload, nonce=nonce)
    return ClientJobResult(
        client_id=job.client_id, round_index=job.round_index,
        ciphertext=ciphertext, indices=None, values=None,
        upload_bytes=len(ciphertext.to_bytes()),
        train_seconds=train_seconds, attempt=job.attempt,
    )


def _finalize_result(
    job: ClientJob, update: LocalUpdate, train_seconds: float,
    nonce: bytes | None = None,
    q_rng: np.random.Generator | None = None,
    payload: bytes | None = None,
) -> ClientJobResult:
    """Package one client's update exactly as :func:`execute_client_job`.

    Shared by the serial and batched paths so the sealed bytes (payload
    encoding, nonce derivation, quantization sub-stream) are produced by
    one code path.  The batch path pre-derives ``nonce``/``q_rng`` for a
    whole chunk (one vectorized mixing pass); when absent they are
    derived per client, identically.
    """
    if job.key is None:
        return ClientJobResult(
            client_id=job.client_id, round_index=job.round_index,
            ciphertext=None, indices=update.indices, values=update.values,
            upload_bytes=0, train_seconds=train_seconds, attempt=job.attempt,
        )
    if job.quantize_bits is not None:
        from ..fl.quantize import quantize_stochastic

        if q_rng is None:
            q_rng = derive_rng(job.entropy, STREAM_TRAIN,
                               job.round_index, job.client_id, 1)
        q = quantize_stochastic(update, job.quantize_bits, q_rng)
        payload = crypto.encode_quantized_gradient(q.indices, q.levels, q.scale)
    elif payload is None:
        payload = crypto.encode_sparse_gradient(update.indices, update.values)
    if nonce is None:
        nonce = derive_nonce(job.entropy, job.round_index, job.client_id)
    ciphertext = crypto.seal(job.key, payload, nonce=nonce)
    return ClientJobResult(
        client_id=job.client_id, round_index=job.round_index,
        ciphertext=ciphertext, indices=None, values=None,
        upload_bytes=len(ciphertext.to_bytes()),
        train_seconds=train_seconds, attempt=job.attempt,
    )


def execute_client_jobs_batch(
    ctx: WorkerContext, jobs: list[ClientJob]
) -> list[ClientJobResult]:
    """Run one chunk of client jobs as stacked tensors; pure in (ctx, jobs).

    The mega-cohort hot path: jobs sharing a shard shape and training
    configuration train as one :func:`~repro.fl.client.compute_updates_batch`
    call (batched matmuls over a leading client axis), then seal in one
    contiguous pass.  Per-client randomness is derived from each job's
    ``(round, client)`` identity exactly as the serial path does, so
    every returned result -- indices, values, and ciphertext bytes --
    is bit-identical to :func:`execute_client_job` on the same job.

    Injected delay/failure faults are **not** interpreted here; the
    vectorized executor adjudicates them before a chunk is formed
    (faulty rows never enter the batch).
    """
    if not jobs:
        return []
    with obs.span("client_batch", parent=jobs[0].trace_ctx, n=len(jobs)):
        return _execute_client_jobs_batch(ctx, jobs)


def _execute_client_jobs_batch(
    ctx: WorkerContext, jobs: list[ClientJob]
) -> list[ClientJobResult]:
    dropout_indices = [
        i for i, layer in enumerate(ctx.model.layers)
        if isinstance(layer, Dropout)
    ]
    # Batch compatibility requires identical tensor shapes and training
    # hyperparameters; everything per-client (rng streams, keys, clip
    # application) rides along per row.
    groups: dict[tuple, list[int]] = {}
    for pos, job in enumerate(jobs):
        data = ctx.clients[job.client_id]
        key = (data.x.shape, data.y.shape, job.training, job.clip,
               job.entropy, job.round_index)
        groups.setdefault(key, []).append(pos)

    results: list[ClientJobResult | None] = [None] * len(jobs)
    for positions in groups.values():
        chunk = [jobs[p] for p in positions]
        datas = [ctx.clients[j.client_id] for j in chunk]
        entropy, round_index = chunk[0].entropy, chunk[0].round_index
        cids = [j.client_id for j in chunk]
        # One vectorized SeedSequence pass per stream for the whole
        # chunk (bit-identical to per-client derive_rng).
        train_rngs = derive_rngs_batch(entropy, STREAM_TRAIN, round_index, cids)
        by_layer = {
            i: derive_rngs_batch(entropy, STREAM_MODEL, round_index, cids, i)
            for i in dropout_indices
        }
        dropout_rngs = [
            {i: by_layer[i][c] for i in dropout_indices}
            for c in range(len(chunk))
        ]
        t0 = time.perf_counter()
        updates = compute_updates_batch(
            ctx.model, ctx.weights, datas, chunk[0].training,
            train_rngs, dropout_rngs, clip_override=chunk[0].clip,
        )
        per_client = (time.perf_counter() - t0) / len(chunk)
        if obs.enabled():
            # One observation per client (amortized) so the latency
            # histogram is comparable across executors.
            for _ in chunk:
                obs.observe("runtime.train_s", per_client)
        sealed = any(j.key is not None for j in chunk)
        nonces = derive_nonces_batch(entropy, round_index, cids) if sealed \
            else [None] * len(chunk)
        if sealed and any(j.quantize_bits is not None for j in chunk):
            q_rngs = derive_rngs_batch(entropy, STREAM_TRAIN, round_index,
                                       cids, 1)
        else:
            q_rngs = [None] * len(chunk)
        payloads: list[bytes | None] = [None] * len(chunk)
        if sealed and all(
            j.key is not None and j.quantize_bits is None for j in chunk
        ):
            k0 = updates[0].indices.shape
            if all(u.indices.shape == k0 for u in updates):
                # Uniform-k sparsifiers (top_k, random_k): encode the
                # whole chunk's payloads in one record-array pass.
                payloads = crypto.encode_sparse_gradients_batch(
                    np.stack([u.indices for u in updates]),
                    np.stack([u.values for u in updates]),
                )
        for pos, job, update, nonce, q_rng, payload in zip(
            positions, chunk, updates, nonces, q_rngs, payloads
        ):
            results[pos] = _finalize_result(job, update, per_client,
                                            nonce=nonce, q_rng=q_rng,
                                            payload=payload)
    return results  # type: ignore[return-value]


def execute_train_task(ctx: WorkerContext, task: TrainTask) -> np.ndarray:
    """Run one generic replay task; returns the update's index set."""
    data = ClientData(client_id=-1, x=task.x, y=task.y)
    update = _train_once(
        ctx.model, task.weights, data, task.training, task.entropy,
        task.stream, task.stream, (*task.seed_key, 0),
    )
    return update.indices
