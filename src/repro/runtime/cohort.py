"""The cohort runtime: parallel, fault-tolerant client execution.

:class:`CohortRuntime` is the engine OLIVE's round loop submits the
sampled cohort through.  It owns a pluggable executor (serial, thread
pool, or process pool with shared-memory model broadcast), applies the
deterministic fault plan per ``(round, client)``, retries transient
failures with exponential backoff, drops stragglers past the
per-client timeout, and enforces the minimum-quorum completion policy.

Two invariants the tests pin:

1. **Executor invariance** -- every executor produces bit-identical
   per-client results and round outcomes for the same configuration,
   regardless of worker count or completion order (all randomness is
   derived from ``(round, client)`` identity, and deliveries are
   finalized in client-id order).
2. **Fault isolation** -- injected faults only ever *exclude* clients;
   the surviving clients' updates are bit-identical to a fault-free
   run, so the aggregate differs exactly by the excluded contributions.
"""

from __future__ import annotations

import dataclasses
import math
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from .. import obs
from ..fl.client import TrainingConfig
from ..fl.datasets import ClientData
from ..fl.models import Sequential
from ..sgx.crypto import Ciphertext
from .config import QuorumNotMetError, RuntimeConfig
from .executors import make_executor
from .faults import ClientFaultPlan, FaultInjector
from .jobs import ClientJob, ClientJobResult, TrainTask, TransientWorkerError

#: Terminal per-client statuses after one round.
STATUS_OK = "ok"
STATUS_DROPPED = "dropped"              # fault-injected or forced dropout
STATUS_STRAGGLER = "straggler"          # injected delay beyond the timeout
STATUS_FAILED = "failed"                # retries exhausted / timed out
STATUS_REJECTED = "rejected"            # enclave refused the ciphertext

#: Failure *reasons*: why a non-ok status happened, one level finer
#: than the status (a STATUS_FAILED client timed out or kept failing
#: transiently; a STATUS_REJECTED upload was corrupt, replayed, or from
#: an unsampled client -- the enclave's ``EnclaveSecurityError.reason``
#: is recorded verbatim for rejects).
REASON_DROPOUT = "dropout"              # fault-injected dropout
REASON_FORCED = "forced"                # caller-forced dropout
REASON_STRAGGLER = "straggler"          # injected delay beyond the timeout
REASON_TIMEOUT = "timeout"              # wall-clock attempt timeout
REASON_TRANSIENT = "transient"          # transient worker failures


def record_failure_reason(outcome: "ClientOutcome", reason: str) -> None:
    """Attach a failure reason to one outcome and count it.

    Counters land under ``runtime.failure_reason.<reason>`` so a sweep
    can read off *why* clients were lost, not just how many.
    """
    outcome.reason = reason
    obs.add(f"runtime.failure_reason.{reason}")


@dataclass
class ClientOutcome:
    """What happened to one sampled client this round."""

    client_id: int
    status: str
    attempts: int = 0
    retries: int = 0
    latency_s: float = 0.0
    plan: ClientFaultPlan | None = None
    result: ClientJobResult | None = None
    reason: str | None = None           # why, when status != ok


@dataclass(frozen=True)
class Delivery:
    """One upload arriving at the aggregator, in canonical cid order.

    ``duplicate`` marks the second copy of a replayed ciphertext;
    ``corrupt`` marks in-transit tampering.  Both are transport faults
    the enclave must reject -- the runtime stages them, the enclave (or
    the plain-mode caller) adjudicates.
    """

    client_id: int
    ciphertext: Ciphertext | None
    result: ClientJobResult
    duplicate: bool = False
    corrupt: bool = False


@dataclass
class CohortResult:
    """Everything one cohort execution produced."""

    round_index: int
    sampled: list[int]
    outcomes: dict[int, ClientOutcome]
    deliveries: list[Delivery] = field(default_factory=list)

    @property
    def completed(self) -> list[int]:
        """Clients whose jobs finished (pre-enclave-verification)."""
        return [cid for cid, o in sorted(self.outcomes.items())
                if o.status == STATUS_OK]

    @property
    def failure_reasons(self) -> dict[str, int]:
        """Histogram of failure reasons across non-ok outcomes."""
        hist: dict[str, int] = {}
        for o in self.outcomes.values():
            if o.reason is not None:
                hist[o.reason] = hist.get(o.reason, 0) + 1
        return dict(sorted(hist.items()))

    def ciphertext_bytes(self, accepted: Iterable[int] | None = None) -> dict[int, bytes]:
        """Sealed upload bytes per client, in canonical delivery order.

        One entry per client -- the *original* delivery, never a
        replayed duplicate (exactly the copy the enclave accepted).
        ``accepted`` restricts the map to those clients; this is what
        the audit recorder commits to, so the bytes here must be the
        bytes that crossed the aggregation boundary, corruption
        included.
        """
        wanted = None if accepted is None else {int(c) for c in accepted}
        blobs: dict[int, bytes] = {}
        for delivery in self.deliveries:
            cid = delivery.client_id
            if delivery.duplicate or cid in blobs:
                continue
            if wanted is not None and cid not in wanted:
                continue
            if delivery.ciphertext is not None:
                blobs[cid] = delivery.ciphertext.to_bytes()
        return blobs


def _tamper(ciphertext: Ciphertext) -> Ciphertext:
    """Flip one bit of the body: AE verification must reject this."""
    body = bytearray(ciphertext.body)
    if body:
        body[-1] ^= 0x01
        return Ciphertext(nonce=ciphertext.nonce, body=bytes(body),
                          tag=ciphertext.tag)
    # Empty body: corrupt the tag instead.
    tag = bytearray(ciphertext.tag)
    tag[-1] ^= 0x01
    return Ciphertext(nonce=ciphertext.nonce, body=ciphertext.body,
                      tag=bytes(tag))


class CohortRuntime:
    """Executes sampled cohorts through a pluggable, seeded executor."""

    def __init__(
        self,
        config: RuntimeConfig,
        model: Sequential,
        clients: list[ClientData],
        entropy: int,
        keys: dict[int, bytes] | None = None,
    ) -> None:
        self.config = config
        self.entropy = int(entropy)
        self.keys = keys
        self.injector = FaultInjector(config.faults, self.entropy)
        self._model = model
        self._clients = {c.client_id: c for c in clients}
        self._d = model.num_params
        self._executor = None

    # -- lifecycle -----------------------------------------------------
    def _ensure_executor(self):
        if self._executor is None:
            self._executor = make_executor(self.config.executor,
                                           self.config.workers,
                                           vector_chunk=self.config.vector_chunk)
            self._executor.start(self._model, self._clients, self._d)
        return self._executor

    def close(self) -> None:
        """Release pools and shared memory (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "CohortRuntime":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort cleanup for leaked runtimes
        try:
            self.close()
        except Exception:
            pass

    # -- cohort execution ----------------------------------------------
    def run_cohort(
        self,
        round_index: int,
        cohort: list[int],
        weights: np.ndarray,
        training: TrainingConfig,
        clip: float | None = None,
        quantize_bits: int | None = None,
        forced_dropouts: set[int] | None = None,
    ) -> CohortResult:
        """Execute one sampled cohort; returns outcomes + deliveries.

        Jobs for all admitted clients are submitted up front (so pooled
        executors overlap them) and collected in **client-id order** --
        the canonical order that makes aggregation input, and therefore
        every downstream bit, independent of completion order.
        """
        cfg = self.config
        forced = forced_dropouts or set()
        executor = self._ensure_executor()
        executor.broadcast(weights)
        # Flight recorder: ship the open (round) span's context with
        # every job so worker-side client spans join the round's trace
        # even across thread/process boundaries.
        trace_ctx = obs.current_context()

        outcomes: dict[int, ClientOutcome] = {}
        pending: dict[int, tuple[ClientJob, object]] = {}
        for cid in sorted(cohort):
            plan = self.injector.plan(round_index, cid)
            if cid in forced or plan.dropped:
                outcomes[cid] = ClientOutcome(cid, STATUS_DROPPED, plan=plan)
                record_failure_reason(
                    outcomes[cid],
                    REASON_FORCED if cid in forced else REASON_DROPOUT)
                obs.add("runtime.dropouts")
                continue
            if (cfg.client_timeout_s is not None
                    and plan.delay_s > cfg.client_timeout_s):
                # Analytic straggler drop: the injected delay is known,
                # so the coordinator gives up without burning wall
                # clock -- and deterministically.
                outcomes[cid] = ClientOutcome(cid, STATUS_STRAGGLER,
                                              plan=plan,
                                              latency_s=plan.delay_s)
                record_failure_reason(outcomes[cid], REASON_STRAGGLER)
                obs.add("runtime.stragglers_dropped")
                continue
            job = ClientJob(
                round_index=round_index, client_id=cid, entropy=self.entropy,
                training=training, clip=clip, quantize_bits=quantize_bits,
                key=self.keys.get(cid) if self.keys is not None else None,
                delay_s=plan.delay_s, fail_attempts=plan.fail_attempts,
                trace_ctx=trace_ctx,
            )
            pending[cid] = (job, plan, executor.submit(job))

        for cid in sorted(pending):
            job, plan, future = pending[cid]
            with obs.span("train", client=cid, executor=executor.kind):
                outcome = self._collect(executor, cid, job, future, plan)
            outcomes[cid] = outcome

        result = CohortResult(round_index=round_index,
                              sampled=sorted(cohort), outcomes=outcomes)
        for cid in result.completed:
            outcome = outcomes[cid]
            assert outcome.result is not None
            plan = outcome.plan
            ciphertext = outcome.result.ciphertext
            corrupt = bool(plan and plan.corrupt and ciphertext is not None)
            if corrupt:
                ciphertext = _tamper(ciphertext)
                obs.add("runtime.corrupted")
            result.deliveries.append(Delivery(
                client_id=cid, ciphertext=ciphertext,
                result=outcome.result, corrupt=corrupt,
            ))
            if plan and plan.replay and ciphertext is not None:
                # The network delivers the same bytes twice; exactly
                # one copy may count.
                result.deliveries.append(Delivery(
                    client_id=cid, ciphertext=ciphertext,
                    result=outcome.result, duplicate=True, corrupt=corrupt,
                ))
                obs.add("runtime.replays_injected")
        obs.gauge("runtime.completed_cohort", len(result.completed))
        drain = getattr(executor, "drain_telemetry", None)
        if drain is not None and obs.enabled():
            # Merge what the process workers recorded so far; the final
            # snapshots (written at worker exit) arrive at shutdown.
            obs.absorb_events(drain())
        return result

    def _collect(self, executor, cid: int, job: ClientJob, future,
                 plan: ClientFaultPlan) -> ClientOutcome:
        """Wait for one client with retry + exponential backoff."""
        cfg = self.config
        t0 = time.perf_counter()
        attempt = 0
        retries = 0
        while True:
            try:
                res = future.result(timeout=self._wall_timeout(job))
                latency = time.perf_counter() - t0
                obs.observe("runtime.client_latency_s", latency)
                return ClientOutcome(cid, STATUS_OK, attempts=attempt + 1,
                                     retries=retries, latency_s=latency,
                                     plan=plan, result=res)
            except (TransientWorkerError, FutureTimeoutError) as exc:
                timed_out = isinstance(exc, FutureTimeoutError)
                if timed_out:
                    obs.add("runtime.timeouts")
                    future.cancel()
                else:
                    obs.add("runtime.transient_failures")
                if attempt >= cfg.max_retries:
                    obs.add("runtime.failures")
                    latency = time.perf_counter() - t0
                    outcome = ClientOutcome(cid, STATUS_FAILED,
                                            attempts=attempt + 1,
                                            retries=retries,
                                            latency_s=latency, plan=plan)
                    record_failure_reason(
                        outcome,
                        REASON_TIMEOUT if timed_out else REASON_TRANSIENT)
                    return outcome
                backoff = min(cfg.backoff_base_s * (2.0 ** attempt),
                              cfg.backoff_cap_s)
                if backoff > 0:
                    obs.observe("runtime.backoff_s", backoff)
                    time.sleep(backoff)
                attempt += 1
                retries += 1
                obs.add("runtime.retries")
                job = dataclasses.replace(job, attempt=attempt)
                future = executor.submit(job)

    def _wall_timeout(self, job: ClientJob) -> float | None:
        """Wall-clock bound for one attempt (injected delay + timeout)."""
        if self.config.client_timeout_s is None:
            return None
        # The injected delay was admitted (<= timeout), so grant it on
        # top of the compute budget; queue wait under a saturated pool
        # is covered by the generous 4x factor.
        return job.delay_s + 4.0 * self.config.client_timeout_s

    # -- policies -------------------------------------------------------
    def quorum_threshold(self, sampled: int) -> int:
        """Clients that must survive for the round to complete."""
        return math.ceil(self.config.min_quorum * sampled)

    def check_quorum(self, survivors: int, sampled: int) -> None:
        """Abort the round when the completion policy is unmet."""
        need = self.quorum_threshold(sampled)
        if survivors < need:
            obs.add("runtime.quorum_failed")
            raise QuorumNotMetError(
                f"only {survivors}/{sampled} clients survived; "
                f"quorum requires {need}"
            )
        obs.add("runtime.quorum_met")

    # -- generic replay tasks (attack teacher, ablations) ---------------
    def map_train_tasks(self, tasks: list[TrainTask]) -> list[np.ndarray]:
        """Run independent local-training replays; order-preserving."""
        executor = self._ensure_executor()
        futures = [executor.submit_task(t) for t in tasks]
        return [f.result() for f in futures]


def run_train_tasks(
    model: Sequential,
    tasks: list[TrainTask],
    config: RuntimeConfig | None = None,
) -> list[np.ndarray]:
    """One-shot convenience: execute replay tasks on a fresh runtime."""
    runtime = CohortRuntime(config or RuntimeConfig(), model, [], entropy=0)
    try:
        return runtime.map_train_tasks(tasks)
    finally:
        runtime.close()
