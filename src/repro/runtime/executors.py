"""Pluggable cohort executors: serial, thread pool, process pool.

All three expose the same tiny surface -- ``start(model, clients, d)``,
``broadcast(weights)``, ``submit(job)`` returning a future, and
``shutdown()`` -- and all three run the *same* job function
(:func:`repro.runtime.jobs.execute_client_job`), so the choice of
executor affects wall clock only, never results (pinned by the
determinism suite).

* :class:`SerialExecutor` executes lazily at ``result()`` time in the
  coordinator thread: zero overhead, exact per-client span timings,
  and the default everywhere.
* :class:`ThreadExecutor` shares the context read-only across a
  ``ThreadPoolExecutor``; each job deep-copies the model template, so
  no training state is shared.  Numpy releases the GIL in the heavy
  kernels and injected client latency overlaps fully.
* :class:`ProcessExecutor` forks a worker pool and broadcasts the
  global model through a :class:`multiprocessing.shared_memory` block:
  the per-round weight vector is written once by the coordinator and
  mapped zero-copy by every worker.  Job/result shuttling is the only
  pickling on the round hot path.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from multiprocessing import shared_memory
from typing import Callable

import numpy as np

from ..fl.datasets import ClientData
from ..fl.models import Sequential
from .jobs import (
    ClientJob,
    ClientJobResult,
    TrainTask,
    WorkerContext,
    execute_client_job,
    execute_train_task,
)

EXECUTORS = ("serial", "thread", "process")


class _LazyFuture:
    """A future that runs its thunk on first ``result()`` call.

    Lets the serial executor keep the submit/collect protocol of the
    pooled executors while executing in the coordinator thread at
    collection time -- so per-client telemetry spans wrap real work.
    """

    def __init__(self, fn: Callable[[], ClientJobResult]) -> None:
        self._fn = fn
        self._done = False
        self._result: ClientJobResult | None = None
        self._exc: BaseException | None = None

    def result(self, timeout: float | None = None):
        if not self._done:
            try:
                self._result = self._fn()
            except BaseException as exc:  # re-raised like a real future
                self._exc = exc
            self._done = True
        if self._exc is not None:
            raise self._exc
        return self._result

    def cancel(self) -> bool:
        return False


class SerialExecutor:
    """In-line execution in submission order; the reference executor."""

    kind = "serial"

    def __init__(self, workers: int = 1) -> None:
        self._ctx: WorkerContext | None = None

    def start(self, model: Sequential, clients: dict[int, ClientData],
              d: int) -> None:
        self._ctx = WorkerContext(model=model, clients=clients,
                                  weights=np.zeros(max(d, 1)))

    def broadcast(self, weights: np.ndarray) -> None:
        assert self._ctx is not None
        self._ctx.weights = weights

    def submit(self, job: ClientJob) -> _LazyFuture:
        assert self._ctx is not None
        ctx = self._ctx
        return _LazyFuture(lambda: execute_client_job(ctx, job))

    def submit_task(self, task: TrainTask) -> _LazyFuture:
        assert self._ctx is not None
        ctx = self._ctx
        return _LazyFuture(lambda: execute_train_task(ctx, task))

    def shutdown(self) -> None:
        self._ctx = None


class ThreadExecutor:
    """Shared-context thread pool; jobs clone the model per call."""

    kind = "thread"

    def __init__(self, workers: int = 4) -> None:
        self.workers = max(1, int(workers))
        self._ctx: WorkerContext | None = None
        self._pool: ThreadPoolExecutor | None = None

    def start(self, model: Sequential, clients: dict[int, ClientData],
              d: int) -> None:
        self._ctx = WorkerContext(model=model, clients=clients,
                                  weights=np.zeros(max(d, 1)))
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="cohort"
        )

    def broadcast(self, weights: np.ndarray) -> None:
        assert self._ctx is not None
        self._ctx.weights = weights

    def submit(self, job: ClientJob) -> Future:
        assert self._pool is not None and self._ctx is not None
        return self._pool.submit(execute_client_job, self._ctx, job)

    def submit_task(self, task: TrainTask) -> Future:
        assert self._pool is not None and self._ctx is not None
        return self._pool.submit(execute_train_task, self._ctx, task)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._ctx = None


# -- process executor ---------------------------------------------------
# Worker-resident context, installed by the pool initializer.  One slot
# per process; forked or spawned children never share this with the
# coordinator.
_PROC_CTX: WorkerContext | None = None


def _proc_init(payload: bytes, shm_name: str, d: int) -> None:
    global _PROC_CTX
    model, clients = pickle.loads(payload)
    shm = shared_memory.SharedMemory(name=shm_name)
    weights = np.ndarray((max(d, 1),), dtype=np.float64, buffer=shm.buf)
    _PROC_CTX = WorkerContext(model=model, clients=clients, weights=weights,
                              extras={"shm": shm})


def _proc_job(job: ClientJob) -> ClientJobResult:
    assert _PROC_CTX is not None, "worker not initialized"
    return execute_client_job(_PROC_CTX, job)


def _proc_task(task: TrainTask) -> np.ndarray:
    assert _PROC_CTX is not None, "worker not initialized"
    return execute_train_task(_PROC_CTX, task)


def _mp_context():
    try:
        return mp.get_context("fork")
    except ValueError:  # platforms without fork: spawn still works
        return mp.get_context()


class ProcessExecutor:
    """Process pool with shared-memory numpy model broadcast."""

    kind = "process"

    def __init__(self, workers: int = 4) -> None:
        self.workers = max(1, int(workers))
        self._pool: ProcessPoolExecutor | None = None
        self._shm: shared_memory.SharedMemory | None = None
        self._weights_view: np.ndarray | None = None

    def start(self, model: Sequential, clients: dict[int, ClientData],
              d: int) -> None:
        size = max(d, 1) * 8
        self._shm = shared_memory.SharedMemory(create=True, size=size)
        self._weights_view = np.ndarray(
            (max(d, 1),), dtype=np.float64, buffer=self._shm.buf
        )
        self._weights_view[:] = 0.0
        payload = pickle.dumps((model, clients), protocol=pickle.HIGHEST_PROTOCOL)
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=_mp_context(),
            initializer=_proc_init,
            initargs=(payload, self._shm.name, d),
        )

    def broadcast(self, weights: np.ndarray) -> None:
        assert self._weights_view is not None
        # All outstanding jobs of the previous round were collected by
        # the coordinator before a new broadcast, so no worker reads a
        # half-written vector.
        np.copyto(self._weights_view[: weights.size], weights)

    def submit(self, job: ClientJob) -> Future:
        assert self._pool is not None
        return self._pool.submit(_proc_job, job)

    def submit_task(self, task: TrainTask) -> Future:
        assert self._pool is not None
        return self._pool.submit(_proc_task, task)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._shm is not None:
            self._weights_view = None
            try:
                self._shm.close()
                self._shm.unlink()
            except (FileNotFoundError, OSError):  # already reclaimed
                pass
            self._shm = None


def make_executor(kind: str, workers: int):
    """Build an executor by name (``serial`` | ``thread`` | ``process``)."""
    if kind == "serial":
        return SerialExecutor(workers)
    if kind == "thread":
        return ThreadExecutor(workers)
    if kind == "process":
        return ProcessExecutor(workers)
    raise ValueError(f"unknown executor {kind!r} (choose from {EXECUTORS})")
