"""Pluggable cohort executors: serial, thread pool, process pool, vectorized.

All expose the same tiny surface -- ``start(model, clients, d)``,
``broadcast(weights)``, ``submit(job)`` returning a future, and
``shutdown()`` -- and all produce the *same bits* per job (pinned by
the determinism suite): the loop executors run
:func:`repro.runtime.jobs.execute_client_job` per client, while the
vectorized executor batches whole chunks of the cohort through
:func:`repro.runtime.jobs.execute_client_jobs_batch`.

* :class:`SerialExecutor` executes lazily at ``result()`` time in the
  coordinator thread: zero overhead, exact per-client span timings,
  and the default everywhere.
* :class:`ThreadExecutor` shares the context read-only across a
  ``ThreadPoolExecutor``; each job deep-copies the model template, so
  no training state is shared.  Numpy releases the GIL in the heavy
  kernels and injected client latency overlaps fully.
* :class:`ProcessExecutor` forks a worker pool and broadcasts the
  global model through a :class:`multiprocessing.shared_memory` block:
  the per-round weight vector is written once by the coordinator and
  mapped zero-copy by every worker.  Job/result shuttling is the only
  pickling on the round hot path.
* :class:`VectorizedExecutor` trains the whole cohort as stacked numpy
  tensors (leading client axis) in chunks of ``vector_chunk`` clients:
  the mega-cohort path, an order of magnitude past the loop executors
  while remaining bit-identical to them.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing as mp
import pickle
import shutil
import tempfile
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from multiprocessing import shared_memory
from pathlib import Path
from typing import Callable

import numpy as np

from .. import obs
from ..fl.datasets import ClientData
from ..fl.models import Sequential, supports_batched_training
from .jobs import (
    ClientJob,
    ClientJobResult,
    TrainTask,
    TransientWorkerError,
    WorkerContext,
    execute_client_job,
    execute_client_jobs_batch,
    execute_train_task,
)

EXECUTORS = ("serial", "thread", "process", "vectorized")


class _LazyFuture:
    """A future that runs its thunk on first ``result()`` call.

    Lets the serial executor keep the submit/collect protocol of the
    pooled executors while executing in the coordinator thread at
    collection time -- so per-client telemetry spans wrap real work.
    """

    def __init__(self, fn: Callable[[], ClientJobResult]) -> None:
        self._fn = fn
        self._done = False
        self._result: ClientJobResult | None = None
        self._exc: BaseException | None = None

    def result(self, timeout: float | None = None):
        if not self._done:
            try:
                self._result = self._fn()
            except BaseException as exc:  # re-raised like a real future
                self._exc = exc
            self._done = True
        if self._exc is not None:
            raise self._exc
        return self._result

    def cancel(self) -> bool:
        return False


class SerialExecutor:
    """In-line execution in submission order; the reference executor."""

    kind = "serial"

    def __init__(self, workers: int = 1) -> None:
        self._ctx: WorkerContext | None = None

    def start(self, model: Sequential, clients: dict[int, ClientData],
              d: int) -> None:
        self._ctx = WorkerContext(model=model, clients=clients,
                                  weights=np.zeros(max(d, 1)))

    def broadcast(self, weights: np.ndarray) -> None:
        assert self._ctx is not None
        self._ctx.weights = weights

    def submit(self, job: ClientJob) -> _LazyFuture:
        assert self._ctx is not None
        ctx = self._ctx
        return _LazyFuture(lambda: execute_client_job(ctx, job))

    def submit_task(self, task: TrainTask) -> _LazyFuture:
        assert self._ctx is not None
        ctx = self._ctx
        return _LazyFuture(lambda: execute_train_task(ctx, task))

    def shutdown(self) -> None:
        self._ctx = None


class ThreadExecutor:
    """Shared-context thread pool; jobs clone the model per call."""

    kind = "thread"

    def __init__(self, workers: int = 4) -> None:
        self.workers = max(1, int(workers))
        self._ctx: WorkerContext | None = None
        self._pool: ThreadPoolExecutor | None = None

    def start(self, model: Sequential, clients: dict[int, ClientData],
              d: int) -> None:
        self._ctx = WorkerContext(model=model, clients=clients,
                                  weights=np.zeros(max(d, 1)))
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="cohort"
        )

    def broadcast(self, weights: np.ndarray) -> None:
        assert self._ctx is not None
        self._ctx.weights = weights

    def submit(self, job: ClientJob) -> Future:
        assert self._pool is not None and self._ctx is not None
        return self._pool.submit(execute_client_job, self._ctx, job)

    def submit_task(self, task: TrainTask) -> Future:
        assert self._pool is not None and self._ctx is not None
        return self._pool.submit(execute_train_task, self._ctx, task)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._ctx = None


class _BatchFuture:
    """A future whose value is produced by a deferred batch flush."""

    def __init__(self, flush: Callable[[], None]) -> None:
        self._flush = flush
        self._done = False
        self._result: ClientJobResult | None = None
        self._exc: BaseException | None = None

    def set_result(self, result: ClientJobResult) -> None:
        self._result = result
        self._done = True

    def set_exception(self, exc: BaseException) -> None:
        self._exc = exc
        self._done = True

    def result(self, timeout: float | None = None):
        if not self._done:
            self._flush()
        assert self._done, "flush did not resolve this future"
        if self._exc is not None:
            raise self._exc
        return self._result

    def cancel(self) -> bool:
        return False


class VectorizedExecutor:
    """Whole-cohort tensor execution: the mega-cohort hot path.

    Submitted jobs accumulate until the first ``result()`` call, then
    flush through :func:`repro.runtime.jobs.execute_client_jobs_batch`
    in contiguous chunks of ``vector_chunk`` clients (bounding peak
    memory at mega-cohort scale).  Fault semantics match the serial
    path: injected transient failures raise per-job at flush time (the
    coordinator's retry resubmits the job, which flushes as its own
    small batch -- still bit-identical, since derivation ignores the
    attempt counter), and injected straggler delay is slept once per
    flush at the chunk maximum (stragglers overlap, as they do under a
    pooled executor).  Models without a batched counterpart
    (convolutional nets) fall back to per-job serial execution.
    """

    kind = "vectorized"

    def __init__(self, workers: int = 1, vector_chunk: int = 8192) -> None:
        self.vector_chunk = max(1, int(vector_chunk))
        self._ctx: WorkerContext | None = None
        self._batched_model = False
        self._queue: list[tuple[ClientJob, _BatchFuture]] = []

    def start(self, model: Sequential, clients: dict[int, ClientData],
              d: int) -> None:
        self._ctx = WorkerContext(model=model, clients=clients,
                                  weights=np.zeros(max(d, 1)))
        self._batched_model = supports_batched_training(model)

    def broadcast(self, weights: np.ndarray) -> None:
        assert self._ctx is not None
        self._ctx.weights = weights

    def submit(self, job: ClientJob) -> _BatchFuture:
        assert self._ctx is not None
        future = _BatchFuture(self._flush)
        self._queue.append((job, future))
        return future

    def submit_task(self, task: TrainTask) -> _LazyFuture:
        assert self._ctx is not None
        ctx = self._ctx
        return _LazyFuture(lambda: execute_train_task(ctx, task))

    def _flush(self) -> None:
        """Resolve every queued future in one batched pass."""
        ctx = self._ctx
        assert ctx is not None
        queue, self._queue = self._queue, []

        # Injected transient failures leave the batch before training:
        # their futures raise, the coordinator retries, and the
        # resubmission flushes cleanly.
        runnable: list[tuple[ClientJob, _BatchFuture]] = []
        for job, future in queue:
            if job.attempt < job.fail_attempts:
                future.set_exception(TransientWorkerError(
                    f"injected transient failure for client {job.client_id} "
                    f"(attempt {job.attempt}/{job.fail_attempts})"
                ))
            else:
                runnable.append((job, future))
        if not runnable:
            return

        # Admitted straggler delays overlap: one sleep at the maximum.
        delay = max(job.delay_s for job, _ in runnable)
        if delay > 0.0:
            time.sleep(delay)

        for start in range(0, len(runnable), self.vector_chunk):
            chunk = runnable[start : start + self.vector_chunk]
            # Faults were adjudicated above; strip them from the job
            # identity only where present (replace() costs add up at
            # mega-cohort scale, and fault-free is the common case).
            jobs = [
                job if job.delay_s == 0.0 and job.fail_attempts == 0
                else dataclasses.replace(job, delay_s=0.0, fail_attempts=0)
                for job, _ in chunk
            ]
            try:
                if self._batched_model:
                    results = execute_client_jobs_batch(ctx, jobs)
                else:
                    results = [execute_client_job(ctx, job) for job in jobs]
            except BaseException as exc:
                for _, future in chunk:
                    future.set_exception(exc)
                continue
            for (_, future), result in zip(chunk, results):
                future.set_result(result)

    def shutdown(self) -> None:
        # Resolve anything still queued so abandoned futures cannot
        # deadlock a caller holding them past shutdown.
        if self._queue and self._ctx is not None:
            self._flush()
        self._queue = []
        self._ctx = None


# -- process executor ---------------------------------------------------
# Worker-resident context, installed by the pool initializer.  One slot
# per process; forked or spawned children never share this with the
# coordinator.
_PROC_CTX: WorkerContext | None = None


def _proc_init(payload: bytes, shm_name: str, d: int,
               tele: tuple[str, float] | None = None) -> None:
    global _PROC_CTX
    model, clients = pickle.loads(payload)
    shm = shared_memory.SharedMemory(name=shm_name)
    weights = np.ndarray((max(d, 1),), dtype=np.float64, buffer=shm.buf)
    _PROC_CTX = WorkerContext(model=model, clients=clients, weights=weights,
                              extras={"shm": shm})
    if tele is not None:
        # Flight recording: opt this worker into its own JSONL shard
        # (the at-fork hook already disabled the inherited telemetry).
        shard_dir, epoch = tele
        obs.adopt_worker_session(shard_dir, epoch)


def _proc_job(job: ClientJob) -> ClientJobResult:
    assert _PROC_CTX is not None, "worker not initialized"
    return execute_client_job(_PROC_CTX, job)


def _proc_task(task: TrainTask) -> np.ndarray:
    assert _PROC_CTX is not None, "worker not initialized"
    return execute_train_task(_PROC_CTX, task)


def _mp_context():
    try:
        return mp.get_context("fork")
    except ValueError:  # platforms without fork: spawn still works
        return mp.get_context()


class ProcessExecutor:
    """Process pool with shared-memory numpy model broadcast."""

    kind = "process"

    def __init__(self, workers: int = 4) -> None:
        self.workers = max(1, int(workers))
        self._pool: ProcessPoolExecutor | None = None
        self._shm: shared_memory.SharedMemory | None = None
        self._weights_view: np.ndarray | None = None
        self._tele_dir: Path | None = None
        self._tele_offsets: dict[Path, int] = {}

    def start(self, model: Sequential, clients: dict[int, ClientData],
              d: int) -> None:
        size = max(d, 1) * 8
        self._shm = shared_memory.SharedMemory(create=True, size=size)
        self._weights_view = np.ndarray(
            (max(d, 1),), dtype=np.float64, buffer=self._shm.buf
        )
        self._weights_view[:] = 0.0
        tele = None
        if obs.enabled():
            # Workers record to per-pid JSONL shards under a private
            # dir; the coordinator drains and merges them (the events
            # carry the coordinator's epoch so timelines line up).
            self._tele_dir = Path(tempfile.mkdtemp(prefix="repro-obs-"))
            self._tele_offsets = {}
            tele = (str(self._tele_dir), obs.get_telemetry()._epoch)
        payload = pickle.dumps((model, clients), protocol=pickle.HIGHEST_PROTOCOL)
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=_mp_context(),
            initializer=_proc_init,
            initargs=(payload, self._shm.name, d, tele),
        )

    def broadcast(self, weights: np.ndarray) -> None:
        assert self._weights_view is not None
        # All outstanding jobs of the previous round were collected by
        # the coordinator before a new broadcast, so no worker reads a
        # half-written vector.
        np.copyto(self._weights_view[: weights.size], weights)

    def submit(self, job: ClientJob) -> Future:
        assert self._pool is not None
        return self._pool.submit(_proc_job, job)

    def submit_task(self, task: TrainTask) -> Future:
        assert self._pool is not None
        return self._pool.submit(_proc_task, task)

    def drain_telemetry(self) -> list[dict]:
        """New, complete events from the workers' JSONL shards.

        Reads each ``worker-<pid>.jsonl`` past the previously drained
        byte offset, stopping at the last newline so a line a worker is
        mid-write never parses as garbage (it is picked up next drain).
        """
        if self._tele_dir is None:
            return []
        events: list[dict] = []
        for path in sorted(self._tele_dir.glob("worker-*.jsonl")):
            offset = self._tele_offsets.get(path, 0)
            try:
                with open(path, "rb") as fh:
                    fh.seek(offset)
                    chunk = fh.read()
            except OSError:
                continue
            end = chunk.rfind(b"\n")
            if end < 0:
                continue
            self._tele_offsets[path] = offset + end + 1
            for line in chunk[: end + 1].splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError:  # torn write; drop the line
                    continue
        return events

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._tele_dir is not None:
            # Workers have exited (their atexit hooks wrote the final
            # counter/histogram snapshots); fold the remainder in.
            obs.absorb_events(self.drain_telemetry())
            shutil.rmtree(self._tele_dir, ignore_errors=True)
            self._tele_dir = None
            self._tele_offsets = {}
        if self._shm is not None:
            self._weights_view = None
            try:
                self._shm.close()
                self._shm.unlink()
            except (FileNotFoundError, OSError):  # already reclaimed
                pass
            self._shm = None


def make_executor(kind: str, workers: int, vector_chunk: int = 8192):
    """Build an executor by name (see :data:`EXECUTORS`)."""
    if kind == "serial":
        return SerialExecutor(workers)
    if kind == "thread":
        return ThreadExecutor(workers)
    if kind == "process":
        return ProcessExecutor(workers)
    if kind == "vectorized":
        return VectorizedExecutor(workers, vector_chunk=vector_chunk)
    raise ValueError(f"unknown executor {kind!r} (choose from {EXECUTORS})")
