"""Sharded multi-enclave aggregation: crash recovery, failover, deadlines.

One enclave with a 96 MB EPC cannot absorb a million uploads per
round.  This module builds the hierarchical topology the ROADMAP names:
*leaf* enclaves each obliviously aggregate one shard of the cohort's
ciphertexts -- sized EPC-aware from the upload bytes the untrusted host
observes -- and a *root* enclave combines the sealed partial aggregates
over mutually attested leaf<->root channels.  Ingest is asynchronous:
a leaf folds uploads into its partial aggregate as they arrive (in
batches of ``oblivious_batch``, each folded through the configured
oblivious kernel) instead of waiting for a per-round barrier.

The topology is born robustness-first, with a full server-side fault
model (:class:`repro.runtime.faults.EnclaveFaultConfig`):

* **leaf crash mid-shard** -- volatile state is lost back to the last
  sealed checkpoint (:meth:`repro.sgx.enclave.Enclave.export_round_state`);
  a process crash restarts the same enclave in place, a fatal machine
  crash fails the shard over to a surviving sibling, which unseals the
  crashed leaf's checkpoint (same measurement, same platform sealing
  key) and resumes *without double-counting or losing accepted
  uploads* -- the enclave's accepted-digest set travels inside the
  checkpoint;
* **straggler leaf / per-shard deadline** -- injected delays are
  adjudicated against ``shard_deadline_s`` analytically (no wall clock
  is spent and, more importantly, decisions are a pure function of the
  fault plan, so recovered rounds replay bit-identically);
* **EPC oversubscription** -- a shard whose staging working set
  exceeds the leaf's EPC is charged the SGX paging penalty from the
  cost model's parameters and flagged;
* **root restart** -- the root checkpoints after every combine and
  rolls back to its last checkpoint, refusing replayed partials.

**Degraded completion**: a shard whose retry/failover budget is
exhausted fails; the round completes with the surviving shards when
the caller's global quorum still holds, else it aborts with
:class:`QuorumNotMetError` and no privacy budget is spent.

**Determinism**: every recovery path re-processes deliveries in the
same canonical order from a checkpoint that is a fold-aligned prefix
of that order, so the partial aggregate's floating-point additions --
and therefore the released aggregate -- are bit-identical to both the
fault-free sharded run and a deterministic replay of the faulted run
(pinned in ``tests/test_shards.py``).
"""

from __future__ import annotations

import hashlib
import math
import struct
import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..fl.client import LocalUpdate
from ..sgx import crypto
from ..sgx.cost import CostParameters
from ..sgx.enclave import DEFAULT_EPC_BYTES, Enclave, EnclaveSecurityError
from .cohort import Delivery
from .config import QuorumNotMetError
from .faults import EnclaveFaultConfig, EnclaveFaultInjector

#: Sealed-partial wire-format version tag.
PARTIAL_MAGIC = b"OLVPART1"

#: Coordinator-side bookkeeping bytes per staged upload (digest, pointers).
_PER_UPLOAD_OVERHEAD = 96
#: Fixed per-leaf enclave overhead (code, heap, keystore) in the sizing model.
_LEAF_FIXED_BYTES = 8 * 1024 * 1024


def _available_aggregators() -> dict:
    # Imported lazily: repro.core imports repro.runtime at package load,
    # so a top-level import here would be circular.
    from ..core.aggregation import AGGREGATORS

    return AGGREGATORS


@dataclass(frozen=True)
class ShardConfig:
    """How the sharded aggregation service is laid out and defended.

    ``shards=None`` sizes the leaf count EPC-aware from the observed
    upload bytes (see :func:`plan_shards`); an explicit count overrides
    it (and may deliberately oversubscribe the EPC -- the paging
    penalty is then charged and flagged).  ``oblivious_batch`` is the
    async-ingest granularity: uploads are folded into the partial
    aggregate through the ``aggregator`` kernel every that-many
    accepted uploads, and sealed checkpoints are cut every
    ``checkpoint_every_batches`` folds (checkpoints are fold-aligned by
    construction, which is what makes recovery bit-identical).
    """

    shards: int | None = None
    max_shards: int = 64
    epc_bytes: int = DEFAULT_EPC_BYTES
    epc_utilization: float = 0.8
    aggregator: str = "advanced"
    oblivious_batch: int = 64
    checkpoint_every_batches: int = 1
    shard_deadline_s: float | None = None
    max_shard_retries: int = 2
    backoff_base_s: float = 0.01
    backoff_cap_s: float = 1.0
    min_shard_quorum: float = 0.0
    faults: EnclaveFaultConfig = field(default_factory=EnclaveFaultConfig)

    def __post_init__(self) -> None:
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be >= 1 when set")
        if self.max_shards < 1:
            raise ValueError("max_shards must be >= 1")
        if not 0.0 < self.epc_utilization <= 1.0:
            raise ValueError("epc_utilization must be in (0, 1]")
        if self.epc_bytes < 1:
            raise ValueError("epc_bytes must be positive")
        if self.oblivious_batch < 1:
            raise ValueError("oblivious_batch must be >= 1")
        if self.checkpoint_every_batches < 1:
            raise ValueError("checkpoint_every_batches must be >= 1")
        if self.shard_deadline_s is not None and self.shard_deadline_s <= 0:
            raise ValueError("shard_deadline_s must be positive when set")
        if self.max_shard_retries < 0:
            raise ValueError("max_shard_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff seconds must be >= 0")
        if not 0.0 <= self.min_shard_quorum <= 1.0:
            raise ValueError("min_shard_quorum must be in [0, 1]")
        if self.aggregator not in _available_aggregators():
            raise ValueError(f"unknown aggregator {self.aggregator!r}")


def plan_shards(
    n_uploads: int, d: int, upload_bytes: int, config: ShardConfig
) -> int:
    """EPC-aware leaf count for one round's upload volume.

    A leaf's round working set is its dense partial aggregate (``8d``
    bytes), a fixed enclave overhead, and per-upload staging (the
    ciphertext, its decrypted sparse form, and replay-defence
    bookkeeping).  The shard count is the smallest that fits every
    leaf's set inside ``epc_utilization`` of the EPC, clamped to
    ``max_shards`` -- the same EPC-pressure reasoning the cost model
    charges paging penalties for (Figures 11-12), applied at sizing
    time instead of after the fact.
    """
    if config.shards is not None:
        return config.shards
    if n_uploads <= 0:
        return 1
    budget = int(config.epc_utilization * config.epc_bytes)
    budget -= 8 * d + _LEAF_FIXED_BYTES
    per_upload = 2 * max(1, upload_bytes) + _PER_UPLOAD_OVERHEAD
    capacity = max(1, budget // per_upload) if budget > 0 else 1
    return max(1, min(config.max_shards, math.ceil(n_uploads / capacity)))


@dataclass
class ShardOutcome:
    """What happened to one shard this round."""

    shard_index: int
    leaf_index: int               # executing leaf at completion (or last try)
    assigned: int                 # deliveries routed to this shard
    accepted: int = 0
    rejected: dict[str, int] = field(default_factory=dict)
    deduped: int = 0              # replayed/duplicate uploads refused
    attempts: int = 1
    crashes: int = 0
    restarts: int = 0             # in-place recoveries from checkpoint
    failovers: int = 0            # reassignments to a sibling leaf
    checkpoints: int = 0
    deadline_misses: int = 0
    epc_oversubscribed: bool = False
    completed: bool = False
    latency_s: float = 0.0        # simulated parallel-leaf latency
    wall_s: float = 0.0           # measured coordinator wall


@dataclass
class ShardRoundReport:
    """Everything one sharded aggregation round produced."""

    round_index: int
    n_shards: int
    aggregate: np.ndarray
    accepted_clients: list[int]
    rejected: dict[int, str]      # non-duplicate rejects: cid -> reason
    outcomes: list[ShardOutcome]
    degraded: bool                # at least one shard failed permanently
    root_restarts: int = 0
    latency_s: float = 0.0        # max shard latency + combine
    wall_s: float = 0.0
    #: (shard, leaf, sealed blob) per completed shard, in combine order
    #: -- the evidence the audit subsystem commits to, so failover and
    #: degraded rounds stay verifiable against deterministic replay.
    sealed_partials: list[tuple[int, int, bytes]] = field(
        default_factory=list)

    @property
    def completion_rate(self) -> float:
        """Completed shards / shards (1.0 for an empty topology)."""
        if not self.outcomes:
            return 1.0
        done = sum(1 for o in self.outcomes if o.completed)
        return done / len(self.outcomes)

    @property
    def failed_shards(self) -> list[int]:
        """Shard indices that failed permanently this round."""
        return [o.shard_index for o in self.outcomes if not o.completed]


@dataclass
class _Leaf:
    """Coordinator-side handle on one leaf enclave."""

    index: int
    enclave: Enclave
    channel_key: bytes            # attested leaf<->root session key
    alive: bool = True


class _LeafRound:
    """One leaf's volatile in-enclave round state (lost on crash).

    The partial aggregate and the pending (not yet folded) batch live
    *inside* the enclave; the coordinator only holds this handle.  A
    crash drops the object; recovery rebuilds it from the sealed
    checkpoint through :meth:`Enclave.restore_round_state`.
    """

    def __init__(self, leaf: _Leaf, d: int, aggregator: str,
                 quantize_bits: int | None) -> None:
        self.leaf = leaf
        self.d = d
        self.partial = np.zeros(d)
        self.pending: list[LocalUpdate] = []
        self.accepted = 0
        self.folds = 0
        self._spec = _available_aggregators()[aggregator]
        self._quantize_bits = quantize_bits

    def ingest(self, delivery: Delivery) -> None:
        """Decrypt/verify one upload and stage it for the next fold."""
        enclave = self.leaf.enclave
        assert delivery.ciphertext is not None
        if self._quantize_bits is not None:
            indices, values = enclave.load_quantized_gradient(
                delivery.client_id, delivery.ciphertext
            )
        else:
            indices, values = enclave.load_gradient(
                delivery.client_id, delivery.ciphertext
            )
        self.pending.append(LocalUpdate(
            client_id=delivery.client_id,
            indices=np.asarray(indices, dtype=np.int64),
            values=np.asarray(values, dtype=np.float64),
        ))
        self.accepted += 1

    def fold(self) -> None:
        """Fold the pending batch through the oblivious kernel."""
        if not self.pending:
            return
        self.partial += self._spec.run(self.pending, self.d)
        self.pending = []
        self.folds += 1

    def checkpoint(self, round_index: int) -> crypto.Ciphertext:
        """Seal the fold-aligned recovery state (pending must be empty)."""
        assert not self.pending, "checkpoints must be fold-aligned"
        return self.leaf.enclave.export_round_state(
            round_index=round_index, partial=self.partial
        )

    def seal_partial(self, round_index: int, shard_index: int) -> bytes:
        """Seal the finished partial for the root over the channel key."""
        self.fold()
        accepted = sorted(self.leaf.enclave._loaded_clients)
        arr = np.ascontiguousarray(self.partial, dtype=np.float64)
        payload = b"".join((
            PARTIAL_MAGIC,
            struct.pack(">III", round_index, shard_index, self.leaf.index),
            struct.pack(">I", len(accepted)),
            np.asarray(accepted, dtype=">u8").tobytes(),
            struct.pack(">I", arr.size),
            arr.tobytes(),
        ))
        nonce = hashlib.sha256(b"partial-nonce:" + payload).digest()[:16]
        ct = crypto.seal(self.leaf.channel_key, payload, nonce=nonce)
        return ct.to_bytes()


def _open_partial(
    channel_key: bytes, blob: bytes
) -> tuple[int, int, int, list[int], np.ndarray]:
    """Root-side verify+decode of one sealed partial aggregate."""
    try:
        payload = crypto.open_sealed(channel_key,
                                     crypto.Ciphertext.from_bytes(blob))
    except crypto.AuthenticationError as exc:
        raise EnclaveSecurityError(
            "partial aggregate failed authentication", reason="corrupt"
        ) from exc
    if payload[:8] != PARTIAL_MAGIC:
        raise EnclaveSecurityError(
            "unrecognized partial format", reason="corrupt"
        )
    off = len(PARTIAL_MAGIC)
    round_index, shard_index, leaf_index = struct.unpack_from(
        ">III", payload, off)
    off += 12
    (count,) = struct.unpack_from(">I", payload, off)
    off += 4
    ids = np.frombuffer(payload, dtype=">u8", count=count, offset=off)
    off += 8 * count
    (size,) = struct.unpack_from(">I", payload, off)
    off += 4
    vec = np.frombuffer(payload, dtype=np.float64, count=size,
                        offset=off).copy()
    return round_index, shard_index, leaf_index, [int(v) for v in ids], vec


class ShardedAggregator:
    """The hierarchical aggregation service: leaves + root + coordinator.

    The *coordinator* (this class's control flow) is untrusted: it
    routes ciphertexts, stores sealed checkpoints, retries, and
    reassigns shards -- but every integrity decision (replay defence,
    double-count defence, checkpoint authenticity, partial
    authenticity) is made inside an enclave.  A lying coordinator can
    delay or drop work, never double-count it.
    """

    def __init__(
        self,
        root: Enclave,
        config: ShardConfig,
        entropy: int = 0,
    ) -> None:
        self.root = root
        self.config = config
        self.entropy = int(entropy)
        self.injector = EnclaveFaultInjector(config.faults, self.entropy)
        self._leaves: list[_Leaf] = []
        self._paging_penalty_s_per_page = (
            CostParameters().cycles_epc_page_fault / 3.8e9
        )

    # -- leaf pool ------------------------------------------------------
    def _spawn_leaf(self) -> _Leaf:
        """Provision one more leaf enclave (attest + key replication)."""
        index = len(self._leaves)
        with obs.span("shard.spawn_leaf", leaf=index):
            enclave = Enclave(
                code_identity=self.root.code_identity,
                attestation_service=self.root.attestation_service,
                epc_bytes=self.config.epc_bytes,
                seed=(self.entropy * 1_000_003 + index) & 0x7FFFFFFF,
            )
            # Mutual attestation gates both the keystore replication and
            # the leaf<->root channel key.
            self.root.replicate_keys_to(enclave)
            channel_key = self.root.attest_peer(enclave.quote())
            leaf = _Leaf(index=index, enclave=enclave,
                         channel_key=channel_key)
            self._leaves.append(leaf)
            obs.add("shard.leaves_spawned")
        return leaf

    def ensure_leaves(self, count: int) -> None:
        """Grow the leaf pool to at least ``count`` live enclaves."""
        while sum(1 for lf in self._leaves if lf.alive) < count:
            self._spawn_leaf()

    def _next_leaf(self, after_index: int) -> _Leaf:
        """The failover target: next surviving leaf, else a fresh spawn."""
        alive = [lf for lf in self._leaves if lf.alive]
        if not alive:
            return self._spawn_leaf()
        for offset in range(1, len(self._leaves) + 1):
            candidate = self._leaves[(after_index + offset)
                                     % len(self._leaves)]
            if candidate.alive:
                return candidate
        return alive[0]

    # -- round orchestration -------------------------------------------
    def aggregate_round(
        self,
        round_index: int,
        deliveries: list[Delivery],
        d: int,
        sampled: set[int] | None = None,
        quantize_bits: int | None = None,
        min_accepted: int = 0,
    ) -> ShardRoundReport:
        """Run one sharded aggregation round over staged deliveries.

        ``min_accepted`` is the caller's global quorum threshold: when
        shard failures (after retries and failover) leave fewer
        accepted uploads, the round aborts with
        :class:`QuorumNotMetError` before anything leaves the root.
        """
        t0 = time.perf_counter()
        cfg = self.config
        sampled = set(sampled if sampled is not None
                      else self.root.sampled_clients)

        # Canonical delivery order: by client id, original before its
        # replayed duplicate.  Grouped so one client's copies land in
        # one shard (the cross-shard double-count defence then only
        # fires for genuinely mis-routed uploads).
        ordered = sorted(
            deliveries, key=lambda dv: (dv.client_id, dv.duplicate))
        groups: list[list[Delivery]] = []
        for dv in ordered:
            if groups and groups[-1][0].client_id == dv.client_id:
                groups[-1].append(dv)
            else:
                groups.append([dv])

        upload_bytes = max(
            (len(dv.ciphertext.to_bytes()) for dv in ordered
             if dv.ciphertext is not None), default=0,
        )
        n_shards = plan_shards(len(groups), d, upload_bytes, cfg)
        self.ensure_leaves(min(n_shards, len(groups)) or 1)

        with obs.span("shard.round", index=round_index, shards=n_shards,
                      uploads=len(ordered)):
            shard_groups = [groups[i::n_shards] for i in range(n_shards)]
            outcomes: list[ShardOutcome] = []
            sealed_partials: list[tuple[int, int, bytes]] = []
            rejected: dict[int, str] = {}
            for shard_index in range(n_shards):
                flat = [dv for grp in shard_groups[shard_index]
                        for dv in grp]
                outcome, blob = self._run_shard(
                    round_index, shard_index, flat, sampled, d,
                    quantize_bits, rejected,
                )
                outcomes.append(outcome)
                if outcome.completed and blob is not None:
                    sealed_partials.append(
                        (shard_index, outcome.leaf_index, blob))
            degraded = any(not o.completed for o in outcomes)
            if degraded:
                obs.add("shard.degraded_rounds")

            aggregate, accepted, root_restarts, combine_wall = self._combine(
                round_index, sealed_partials, d)

            if len(accepted) < min_accepted:
                obs.add("shard.quorum_failed")
                raise QuorumNotMetError(
                    f"only {len(accepted)} uploads accepted across "
                    f"{sum(1 for o in outcomes if o.completed)}/"
                    f"{n_shards} surviving shards; quorum requires "
                    f"{min_accepted}"
                )

            latency = max((o.latency_s for o in outcomes), default=0.0)
            report = ShardRoundReport(
                round_index=round_index, n_shards=n_shards,
                aggregate=aggregate, accepted_clients=accepted,
                rejected=rejected, outcomes=outcomes, degraded=degraded,
                root_restarts=root_restarts,
                latency_s=latency + combine_wall,
                wall_s=time.perf_counter() - t0,
                sealed_partials=sealed_partials,
            )
            obs.gauge("shard.completion_rate", report.completion_rate)
            obs.gauge("shard.round_latency_s", report.latency_s)
        return report

    # -- one shard ------------------------------------------------------
    def _estimate_working_set(self, assigned: int, d: int,
                              upload_bytes: int) -> int:
        return (_LEAF_FIXED_BYTES + 8 * d
                + assigned * (2 * upload_bytes + _PER_UPLOAD_OVERHEAD))

    def _run_shard(
        self,
        round_index: int,
        shard_index: int,
        deliveries: list[Delivery],
        sampled: set[int],
        d: int,
        quantize_bits: int | None,
        rejected: dict[int, str],
    ) -> tuple[ShardOutcome, bytes | None]:
        """Ingest one shard with retry, restart, failover, and deadline."""
        cfg = self.config
        t0 = time.perf_counter()
        leaf = self._leaves[shard_index % len(self._leaves)]
        outcome = ShardOutcome(shard_index=shard_index,
                               leaf_index=leaf.index,
                               assigned=len(deliveries))

        upload_bytes = max(
            (len(dv.ciphertext.to_bytes()) for dv in deliveries
             if dv.ciphertext is not None), default=0,
        )
        working_set = self._estimate_working_set(len(deliveries), d,
                                                 upload_bytes)
        if working_set > cfg.epc_bytes:
            outcome.epc_oversubscribed = True
            obs.add("shard.epc_oversubscribed")
            params = CostParameters()
            excess_pages = math.ceil(
                (working_set - cfg.epc_bytes) / params.page_bytes)
            outcome.latency_s += excess_pages * self._paging_penalty_s_per_page

        ckpt: crypto.Ciphertext | None = None
        ckpt_pos = 0
        resume_pos = 0
        attempt = 0
        batch_every = cfg.oblivious_batch
        ckpt_every = cfg.oblivious_batch * cfg.checkpoint_every_batches

        leaf.enclave.begin_round(sampled=sampled)
        state = _LeafRound(leaf, d, cfg.aggregator, quantize_bits)

        while True:
            plan = self.injector.leaf_plan(round_index, shard_index, attempt)

            # Deadline adjudication is analytic: the injected delay is
            # part of the fault plan, so the coordinator abandons the
            # attempt deterministically and without burning wall clock.
            if (cfg.shard_deadline_s is not None
                    and plan.delay_s > cfg.shard_deadline_s):
                outcome.deadline_misses += 1
                obs.add("shard.deadline_misses")
                obs.event("shard.deadline_miss", shard=shard_index,
                          leaf=leaf.index, attempt=attempt,
                          delay_s=plan.delay_s)
                outcome.latency_s += cfg.shard_deadline_s
                if attempt >= cfg.max_shard_retries:
                    return self._shard_failed(outcome, t0)
                attempt += 1
                outcome.attempts += 1
                outcome.latency_s += self._backoff(attempt)
                # The slow leaf is abandoned for this shard (it stays
                # alive for others); a sibling resumes from the sealed
                # checkpoint.
                leaf, state = self._reassign(
                    leaf, ckpt, sampled, d, quantize_bits, outcome,
                    kill=False, move=True)
                resume_pos = ckpt_pos
                continue

            outcome.latency_s += plan.delay_s
            crash_pos = None
            if plan.crash_fraction is not None:
                remaining = len(deliveries) - resume_pos
                crash_pos = resume_pos + int(plan.crash_fraction * remaining)

            with obs.span("shard.ingest", hist="shard.ingest_s",
                          shard=shard_index, leaf=leaf.index,
                          attempt=attempt):
                pos = resume_pos
                crashed = False
                while pos < len(deliveries):
                    if crash_pos is not None and pos == crash_pos:
                        crashed = True
                        break
                    self._ingest_one(state, deliveries[pos], outcome,
                                     rejected)
                    pos += 1
                    if (state.accepted % batch_every == 0
                            and state.pending):
                        state.fold()
                    if (state.accepted and not state.pending
                            and state.accepted % ckpt_every == 0
                            and pos > ckpt_pos):
                        with obs.span("shard.checkpoint",
                                      shard=shard_index, leaf=leaf.index):
                            ckpt = state.checkpoint(round_index)
                        ckpt_pos = pos
                        outcome.checkpoints += 1
                        obs.add("shard.checkpoints")

            if not crashed:
                blob = state.seal_partial(round_index, shard_index)
                accepted_frac = (state.accepted / len(deliveries)
                                 if deliveries else 1.0)
                if accepted_frac < cfg.min_shard_quorum:
                    obs.add("shard.quorum_failed")
                    return self._shard_failed(outcome, t0)
                outcome.accepted = state.accepted
                outcome.leaf_index = leaf.index
                outcome.completed = True
                outcome.wall_s = time.perf_counter() - t0
                outcome.latency_s += outcome.wall_s
                obs.add("shard.uploads_accepted", state.accepted)
                obs.observe("shard.latency_s", outcome.latency_s)
                return outcome, blob

            # Crash: volatile state (partial + pending batch + the
            # enclave's post-checkpoint digest entries) is gone.
            outcome.crashes += 1
            obs.add("shard.crashes")
            obs.event("shard.crash", shard=shard_index, leaf=leaf.index,
                      attempt=attempt, fatal=bool(plan.fatal),
                      position=pos, resumed_from=ckpt_pos)
            if attempt >= cfg.max_shard_retries:
                if plan.fatal:
                    leaf.alive = False
                    obs.add("shard.leaves_lost")
                return self._shard_failed(outcome, t0)
            attempt += 1
            outcome.attempts += 1
            outcome.latency_s += self._backoff(attempt)
            leaf, state = self._reassign(
                leaf, ckpt, sampled, d, quantize_bits, outcome,
                kill=plan.fatal, move=plan.fatal)
            resume_pos = ckpt_pos

    def _ingest_one(self, state: _LeafRound, delivery: Delivery,
                    outcome: ShardOutcome, rejected: dict[int, str]) -> None:
        try:
            state.ingest(delivery)
        except EnclaveSecurityError as exc:
            if exc.reason in ("duplicate", "replay"):
                # Replayed bytes or a second contribution: the enclave
                # already holds exactly one accepted copy.
                outcome.deduped += 1
                obs.add("shard.uploads_deduped")
                return
            outcome.rejected[exc.reason] = (
                outcome.rejected.get(exc.reason, 0) + 1)
            obs.add("shard.uploads_rejected")
            obs.add(f"shard.reject_reason.{exc.reason}")
            if not delivery.duplicate:
                rejected[delivery.client_id] = exc.reason

    def _backoff(self, attempt: int) -> float:
        cfg = self.config
        backoff = min(cfg.backoff_base_s * (2.0 ** (attempt - 1)),
                      cfg.backoff_cap_s)
        obs.observe("shard.backoff_s", backoff)
        return backoff

    def _reassign(
        self,
        leaf: _Leaf,
        ckpt: crypto.Ciphertext | None,
        sampled: set[int],
        d: int,
        quantize_bits: int | None,
        outcome: ShardOutcome,
        kill: bool,
        move: bool,
    ) -> tuple[_Leaf, _LeafRound]:
        """Recover one shard onto a restarted or failed-over leaf.

        ``kill`` marks the current leaf's machine dead (fatal crash);
        ``move`` reassigns the shard to the next surviving sibling
        (fatal crash or deadline miss -- a stalled-but-alive leaf keeps
        serving other shards).  Neither set is a process restart in
        place.
        """
        if kill:
            leaf.alive = False
            obs.add("shard.leaves_lost")
            obs.event("shard.leaf_lost", leaf=leaf.index,
                      shard=outcome.shard_index)
        if move:
            target = self._next_leaf(leaf.index)
            outcome.failovers += 1
            obs.add("shard.failovers")
            obs.event("shard.failover", shard=outcome.shard_index,
                      source=leaf.index, target=target.index,
                      from_checkpoint=ckpt is not None)
            with obs.span("shard.failover", source=leaf.index,
                          target=target.index):
                leaf = target
        else:
            outcome.restarts += 1
            obs.add("shard.restarts")
            obs.event("shard.restart", shard=outcome.shard_index,
                      leaf=leaf.index, from_checkpoint=ckpt is not None)

        state = _LeafRound(leaf, d, self.config.aggregator, quantize_bits)
        if ckpt is not None:
            with obs.span("shard.restore", leaf=leaf.index):
                _, partial = leaf.enclave.restore_round_state(ckpt)
            assert partial is not None
            state.partial = partial
            state.accepted = len(leaf.enclave._loaded_clients)
            state.folds = state.accepted // self.config.oblivious_batch
            obs.add("shard.recoveries")
        else:
            leaf.enclave.begin_round(sampled=sampled)
        outcome.leaf_index = leaf.index
        return leaf, state

    # -- root combine ---------------------------------------------------
    def _combine(
        self,
        round_index: int,
        sealed_partials: list[tuple[int, int, bytes]],
        d: int,
    ) -> tuple[np.ndarray, list[int], int, float]:
        """Combine sealed partials in shard order, surviving restarts."""
        t0 = time.perf_counter()
        cfg = self.config
        root = self.root
        plan = self.injector.root_plan(round_index)
        n = len(sealed_partials)
        restart_at = None
        if plan.restart_fraction is not None and n:
            restart_at = int(plan.restart_fraction * n)

        channel_keys = {lf.index: lf.channel_key for lf in self._leaves}
        partial = np.zeros(d)
        ckpt: crypto.Ciphertext | None = None
        ckpt_pos = 0
        pos = 0
        restarts = 0
        with obs.span("shard.combine", partials=n):
            while pos < n:
                if restart_at is not None and pos == restart_at:
                    # Root crash between combines: volatile sum lost,
                    # recover from the root's own sealed checkpoint.
                    restart_at = None
                    restarts += 1
                    obs.add("shard.root_restarts")
                    obs.event("shard.root_restart", position=pos,
                              resumed_from=ckpt_pos,
                              from_checkpoint=ckpt is not None)
                    if ckpt is not None:
                        with obs.span("shard.restore", leaf="root"):
                            _, restored = root.restore_round_state(ckpt)
                        assert restored is not None
                        partial = restored
                    else:
                        root.begin_round()
                        partial = np.zeros(d)
                    pos = ckpt_pos
                    continue
                shard_index, leaf_index, blob = sealed_partials[pos]
                digest = hashlib.sha256(blob).digest()
                if root.has_digest(digest):
                    # Already combined (a coordinator replaying from
                    # zero after a restart): skip, never double-count.
                    pos += 1
                    continue
                _, decoded_shard, _, ids, vec = _open_partial(
                    channel_keys[leaf_index], blob)
                if decoded_shard != shard_index or vec.size != d:
                    raise EnclaveSecurityError(
                        "partial aggregate metadata mismatch",
                        reason="corrupt",
                    )
                root.record_partial(digest, ids)
                partial += vec
                pos += 1
                ckpt = root.export_round_state(round_index=round_index,
                                               partial=partial)
                ckpt_pos = pos
        accepted = sorted(root._loaded_clients)
        if cfg.faults.active:
            obs.gauge("shard.partials_combined", n)
        return partial, accepted, restarts, time.perf_counter() - t0

    def _shard_failed(
        self, outcome: ShardOutcome, t0: float
    ) -> tuple[ShardOutcome, None]:
        outcome.completed = False
        outcome.wall_s = time.perf_counter() - t0
        obs.add("shard.failed")
        obs.event("shard.failed", shard=outcome.shard_index,
                  leaf=outcome.leaf_index, crashes=outcome.crashes,
                  deadline_misses=outcome.deadline_misses)
        obs.observe("shard.latency_s", outcome.latency_s)
        return outcome, None
