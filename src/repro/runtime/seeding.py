"""Deterministic per-task seed derivation for the cohort runtime.

Every source of client-side randomness -- the local-SGD batch order,
the ``random_k`` sparsifier, QSGD stochastic quantization, the model's
dropout masks, the fault injector's coin flips, and the encryption
nonce -- is derived from one base entropy plus a structured key
``(stream, round, client, ...)`` through :class:`numpy.random.SeedSequence`.
Because the derivation depends only on *identity* (which round, which
client) and never on execution order, worker count, or completion
order, every executor produces bit-identical :class:`LocalUpdate`s:
the property BlazeFL calls simulation-reproducibility, and the one the
determinism suite in ``tests/test_runtime.py`` pins.

Streams partition the derived namespace so that, e.g., the fault
injector's draws can never collide with (and therefore perturb) the
training stream of the same ``(round, client)`` pair.
"""

from __future__ import annotations

import numpy as np
from numpy.random.bit_generator import ISeedSequence

from ..fl.models import Dropout, Sequential

#: Stream indices: the first spawn-key component, one per randomness
#: consumer.  Never renumber -- results are pinned by tests.
STREAM_TRAIN = 0    # local-SGD batch order, random_k, quantization
STREAM_MODEL = 1    # dropout-layer masks (one sub-stream per layer)
STREAM_FAULT = 2    # fault-injector coin flips and delay draws
STREAM_NONCE = 3    # per-(round, client) encryption nonce
STREAM_TEACHER = 4  # attack teacher replay (round, label, shard)
STREAM_ENCLAVE = 5  # server-side enclave faults (round, shard, attempt)


def seed_sequence(entropy: int, stream: int, *key: int) -> np.random.SeedSequence:
    """The SeedSequence identified by ``(entropy, stream, *key)``.

    ``key`` components must be non-negative integers (SeedSequence
    spawn keys are uint32 words).
    """
    if key and min(key) < 0:
        raise ValueError(f"seed key components must be >= 0, got {key}")
    return np.random.SeedSequence(entropy=entropy, spawn_key=(stream, *key))


def derive_rng(entropy: int, stream: int, *key: int) -> np.random.Generator:
    """A fresh Generator on the ``(entropy, stream, *key)`` stream."""
    return np.random.default_rng(seed_sequence(entropy, stream, *key))


def reseed_model(model: Sequential, entropy: int, stream: int, *key: int) -> None:
    """Re-key every stochastic layer of ``model`` deterministically.

    Dropout layers carry their own Generator; a model trained by two
    different workers must draw identical masks, so each layer gets the
    sub-stream ``(entropy, stream, *key, layer_index)``.
    """
    for i, layer in enumerate(model.layers):
        if isinstance(layer, Dropout):
            layer._rng = derive_rng(entropy, stream, *key, i)


def derive_nonce(entropy: int, round_index: int, client_id: int) -> bytes:
    """A deterministic 16-byte encryption nonce per ``(round, client)``.

    Unique per message (the key namespace guarantees no two jobs share
    a ``(round, client)`` pair within a deployment), so keystream reuse
    cannot occur; determinism makes whole ciphertexts replayable
    bit-for-bit across executors and re-runs.
    """
    seq = seed_sequence(entropy, STREAM_NONCE, round_index, client_id)
    return seq.generate_state(4, np.uint32).tobytes()


# ----------------------------------------------------------------------
# Batched (mega-cohort) derivation
# ----------------------------------------------------------------------
#
# Deriving one Generator per client through SeedSequence is a fixed
# per-client cost (~30 us each: entropy-pool mixing, state generation,
# PCG64 init) that caps the vectorized executor's speedup once training
# itself is batched.  The functions below reimplement SeedSequence's
# entropy-mixing and state-generation loops as uint32 numpy ops over a
# *stack* of spawn keys that differ only in the client-id word.  The
# hash/mix constants evolve identically for every client (they depend
# only on word position, never on word value), so they stay scalars
# while the pool columns vectorize across clients -- one pass derives
# the whole cohort's states, bit-identical to per-client SeedSequence
# (pinned against numpy in the equivalence suite).

_INIT_A = np.uint32(0x43B0D7E5)
_MULT_A = np.uint32(0x931E8875)
_INIT_B = np.uint32(0x8B51F9DD)
_MULT_B = np.uint32(0x58F38DED)
_MIX_MULT_L = np.uint32(0xCA01F9DD)
_MIX_MULT_R = np.uint32(0x4973F715)
_XSHIFT = np.uint32(16)
_POOL_SIZE = 4


def _uint32_words(value: int) -> list[int]:
    """``value`` as little-endian uint32 words (SeedSequence coercion)."""
    words = [value & 0xFFFFFFFF]
    value >>= 32
    while value:
        words.append(value & 0xFFFFFFFF)
        value >>= 32
    return words


def _assembled_words(
    entropy: int, prefix: tuple[int, ...], variable: np.ndarray,
    suffix: tuple[int, ...],
) -> np.ndarray:
    """The ``(C, k)`` assembled-entropy stack for C spawn keys.

    Row ``c`` holds what ``SeedSequence(entropy,
    spawn_key=(*prefix, variable[c], *suffix)).get_assembled_entropy()``
    would: the entropy words zero-padded to the pool size (numpy does
    this whenever a spawn key is present, to keep spawn keys from
    aliasing entropy words), then the spawn-key words.
    """
    ew = _uint32_words(entropy)
    if len(ew) < _POOL_SIZE:
        ew = ew + [0] * (_POOL_SIZE - len(ew))
    cols: list[int | None] = [*ew, *prefix, None, *suffix]
    words = np.empty((len(variable), len(cols)), dtype=np.uint32)
    for j, col in enumerate(cols):
        words[:, j] = variable if col is None else col
    return words


def _hash_step(
    value: np.ndarray, hash_const: np.uint32
) -> tuple[np.ndarray, np.uint32]:
    """One hash of the mixing PRF; returns (hashed, advanced const)."""
    value = value ^ hash_const
    hash_const = np.uint32(hash_const * _MULT_A)
    value = value * hash_const
    value ^= value >> _XSHIFT
    return value, hash_const


def _mix_columns(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """SeedSequence's mix(): multiply-subtract then xor-shift."""
    result = x * _MIX_MULT_L - y * _MIX_MULT_R
    result ^= result >> _XSHIFT
    return result


def _mix_entropy_batch(words: np.ndarray) -> np.ndarray:
    """Vectorized SeedSequence.mix_entropy over a ``(C, k)`` stack.

    The hash constant is threaded through every hash call in numpy's
    exact order: pool fill, then a fresh hash per (src, dst) pair in
    both the inter-mix loop and the extra-entropy loop.
    """
    n, k = words.shape
    pool = np.zeros((n, _POOL_SIZE), dtype=np.uint32)
    with np.errstate(over="ignore"):
        hash_const = _INIT_A
        zero = np.zeros(n, dtype=np.uint32)
        for i in range(_POOL_SIZE):
            src = words[:, i] if i < k else zero
            pool[:, i], hash_const = _hash_step(src, hash_const)
        for i_src in range(_POOL_SIZE):
            for i_dst in range(_POOL_SIZE):
                if i_src != i_dst:
                    h, hash_const = _hash_step(pool[:, i_src], hash_const)
                    pool[:, i_dst] = _mix_columns(pool[:, i_dst], h)
        for i_src in range(_POOL_SIZE, k):
            for i_dst in range(_POOL_SIZE):
                h, hash_const = _hash_step(words[:, i_src], hash_const)
                pool[:, i_dst] = _mix_columns(pool[:, i_dst], h)
    return pool


def _generate_state_batch(pool: np.ndarray, n_words: int) -> np.ndarray:
    """Vectorized SeedSequence.generate_state: ``(C, n_words)`` uint32."""
    out = np.empty((pool.shape[0], n_words), dtype=np.uint32)
    with np.errstate(over="ignore"):
        hash_const = _INIT_B
        for i in range(n_words):
            value = pool[:, i % _POOL_SIZE] ^ hash_const
            hash_const = np.uint32(hash_const * _MULT_B)
            value = value * hash_const
            value ^= value >> _XSHIFT
            out[:, i] = value
    return out


class _PrecomputedSeedSequence(ISeedSequence):
    """Hands a pre-derived state row to a BitGenerator.

    PCG64 only calls ``generate_state(4, uint64)`` on the seed object it
    is given; supplying the row computed by the batch path skips the
    per-client pool mixing entirely.
    """

    __slots__ = ("_words",)

    def __init__(self, words: np.ndarray) -> None:
        self._words = words

    def generate_state(self, n_words, dtype=np.uint32):
        # `is` fast path: PCG64 passes the np.uint64 type object itself.
        wide = dtype is np.uint64 or np.dtype(dtype) == np.uint64
        words = self._words if wide else self._words.view(np.uint32)
        if len(words) != n_words:
            raise ValueError(f"precomputed seed holds {len(words)} words, "
                             f"caller wants {n_words}")
        return words


def _batch_ids(
    stream: int, key: tuple[int, ...], client_ids,
) -> np.ndarray | None:
    """Validate key components and coerce ``client_ids`` to uint32;
    None when any component exceeds uint32 (SeedSequence coerces such
    values to multiple words -- callers fall back to the scalar path
    rather than vectorize that rarity)."""
    ids = np.asarray(client_ids, dtype=np.int64)
    if ids.size and ids.min() < 0:
        raise ValueError("client ids must be >= 0")
    if min(key, default=0) < 0 or stream < 0:
        raise ValueError(f"seed key components must be >= 0, got {key}")
    if max((stream, *key), default=0) > 0xFFFFFFFF or (
        ids.size and ids.max() > 0xFFFFFFFF
    ):
        return None
    return ids.astype(np.uint32)


def derive_rngs_batch(
    entropy: int, stream: int, round_index: int, client_ids, *suffix: int
) -> list[np.random.Generator]:
    """One Generator per client, bit-identical to per-client
    :func:`derive_rng` ``(entropy, stream, round_index, cid, *suffix)``.

    One vectorized mixing pass over the stacked spawn keys replaces C
    SeedSequence constructions (the mega-cohort executor's per-client
    rng floor); PCG64 is then seeded from the precomputed state rows.
    """
    ids = _batch_ids(stream, (round_index, *suffix), client_ids)
    if ids is None:
        return [
            derive_rng(entropy, stream, round_index, int(cid), *suffix)
            for cid in np.asarray(client_ids).tolist()
        ]
    words = _assembled_words(
        entropy, (stream, round_index), ids, tuple(suffix)
    )
    state = _generate_state_batch(_mix_entropy_batch(words), 8)
    state64 = np.ascontiguousarray(state).view(np.uint64)
    return [
        np.random.Generator(np.random.PCG64(_PrecomputedSeedSequence(row)))
        for row in state64
    ]


def derive_nonces_batch(
    entropy: int, round_index: int, client_ids
) -> list[bytes]:
    """Batched :func:`derive_nonce`: one 16-byte nonce per client."""
    ids = _batch_ids(STREAM_NONCE, (round_index,), client_ids)
    if ids is None:
        return [
            derive_nonce(entropy, round_index, int(cid))
            for cid in np.asarray(client_ids).tolist()
        ]
    words = _assembled_words(entropy, (STREAM_NONCE, round_index), ids, ())
    state = _generate_state_batch(_mix_entropy_batch(words), 4)
    state = np.ascontiguousarray(state.astype("<u4", copy=False))
    return [row.tobytes() for row in state]
