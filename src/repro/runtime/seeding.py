"""Deterministic per-task seed derivation for the cohort runtime.

Every source of client-side randomness -- the local-SGD batch order,
the ``random_k`` sparsifier, QSGD stochastic quantization, the model's
dropout masks, the fault injector's coin flips, and the encryption
nonce -- is derived from one base entropy plus a structured key
``(stream, round, client, ...)`` through :class:`numpy.random.SeedSequence`.
Because the derivation depends only on *identity* (which round, which
client) and never on execution order, worker count, or completion
order, every executor produces bit-identical :class:`LocalUpdate`s:
the property BlazeFL calls simulation-reproducibility, and the one the
determinism suite in ``tests/test_runtime.py`` pins.

Streams partition the derived namespace so that, e.g., the fault
injector's draws can never collide with (and therefore perturb) the
training stream of the same ``(round, client)`` pair.
"""

from __future__ import annotations

import numpy as np

from ..fl.models import Dropout, Sequential

#: Stream indices: the first spawn-key component, one per randomness
#: consumer.  Never renumber -- results are pinned by tests.
STREAM_TRAIN = 0    # local-SGD batch order, random_k, quantization
STREAM_MODEL = 1    # dropout-layer masks (one sub-stream per layer)
STREAM_FAULT = 2    # fault-injector coin flips and delay draws
STREAM_NONCE = 3    # per-(round, client) encryption nonce
STREAM_TEACHER = 4  # attack teacher replay (round, label, shard)


def seed_sequence(entropy: int, stream: int, *key: int) -> np.random.SeedSequence:
    """The SeedSequence identified by ``(entropy, stream, *key)``.

    ``key`` components must be non-negative integers (SeedSequence
    spawn keys are uint32 words).
    """
    if any(k < 0 for k in key):
        raise ValueError(f"seed key components must be >= 0, got {key}")
    return np.random.SeedSequence(entropy=entropy, spawn_key=(stream, *key))


def derive_rng(entropy: int, stream: int, *key: int) -> np.random.Generator:
    """A fresh Generator on the ``(entropy, stream, *key)`` stream."""
    return np.random.default_rng(seed_sequence(entropy, stream, *key))


def reseed_model(model: Sequential, entropy: int, stream: int, *key: int) -> None:
    """Re-key every stochastic layer of ``model`` deterministically.

    Dropout layers carry their own Generator; a model trained by two
    different workers must draw identical masks, so each layer gets the
    sub-stream ``(entropy, stream, *key, layer_index)``.
    """
    for i, layer in enumerate(model.layers):
        if isinstance(layer, Dropout):
            layer._rng = derive_rng(entropy, stream, *key, i)


def derive_nonce(entropy: int, round_index: int, client_id: int) -> bytes:
    """A deterministic 16-byte encryption nonce per ``(round, client)``.

    Unique per message (the key namespace guarantees no two jobs share
    a ``(round, client)`` pair within a deployment), so keystream reuse
    cannot occur; determinism makes whole ciphertexts replayable
    bit-for-bit across executors and re-runs.
    """
    seq = seed_sequence(entropy, STREAM_NONCE, round_index, client_id)
    return seq.generate_state(4, np.uint32).tobytes()
