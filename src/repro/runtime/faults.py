"""Deterministic fault injection for cohort execution.

Models the failure modes a concrete-scalability simulation must cover
(OLYMPIA's dropout/straggler taxonomy) plus the adversarial transport
faults OLIVE's enclave must reject (corrupted and replayed
ciphertexts):

* **dropout** -- the client was securely sampled but never responds
  (battery, network loss);
* **straggler** -- the client responds after an injected delay drawn
  from an exponential (or fixed) distribution; delays beyond the
  runtime's per-client timeout are dropped without waiting;
* **corrupt** -- the ciphertext is tampered in transit, so enclave AE
  verification rejects it;
* **replay** -- the same ciphertext is delivered twice in one round;
  the enclave must accept exactly one copy;
* **transient worker failure** -- the execution substrate (not the
  client) fails a number of attempts before succeeding, exercising the
  runtime's retry-with-backoff path.

Every decision is a pure function of ``(entropy, round, client)``
through :mod:`repro.runtime.seeding`'s ``STREAM_FAULT`` stream, so a
fault plan is identical across executors, worker counts, and re-runs:
fault-path tests can replay a faulty round bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from .seeding import STREAM_FAULT, derive_rng


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection rates and shapes (all rates are per-client)."""

    dropout_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_delay_s: float = 0.02   # mean injected delay
    straggler_jitter: bool = True     # exponential around the mean when True
    corrupt_rate: float = 0.0
    replay_rate: float = 0.0
    transient_failure_rate: float = 0.0
    transient_failures: int = 1       # failing attempts per affected client

    def __post_init__(self) -> None:
        for name in ("dropout_rate", "straggler_rate", "corrupt_rate",
                     "replay_rate", "transient_failure_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.straggler_delay_s < 0:
            raise ValueError("straggler_delay_s must be >= 0")
        if self.transient_failures < 0:
            raise ValueError("transient_failures must be >= 0")

    @property
    def active(self) -> bool:
        """True when any fault mode has a non-zero rate."""
        return any((self.dropout_rate, self.straggler_rate,
                    self.corrupt_rate, self.replay_rate,
                    self.transient_failure_rate))


@dataclass(frozen=True)
class ClientFaultPlan:
    """The faults one ``(round, client)`` pair experiences."""

    dropped: bool = False
    delay_s: float = 0.0
    corrupt: bool = False
    replay: bool = False
    fail_attempts: int = 0

    @property
    def clean(self) -> bool:
        """True when this client runs fault-free."""
        return (not self.dropped and self.delay_s == 0.0
                and not self.corrupt and not self.replay
                and self.fail_attempts == 0)


CLEAN_PLAN = ClientFaultPlan()


class FaultInjector:
    """Draws one deterministic :class:`ClientFaultPlan` per (round, client).

    The draw order inside :meth:`plan` is fixed (dropout, straggler,
    delay, corrupt, replay, transient) so plans stay stable under
    config changes to unrelated rates only when derived rates change --
    the determinism contract is per-configuration, not cross-config.
    """

    def __init__(self, config: FaultConfig, entropy: int) -> None:
        self.config = config
        self.entropy = entropy

    def plan(self, round_index: int, client_id: int) -> ClientFaultPlan:
        """The fault plan for ``client_id`` in ``round_index``."""
        cfg = self.config
        if not cfg.active:
            return CLEAN_PLAN
        rng = derive_rng(self.entropy, STREAM_FAULT, round_index, client_id)
        dropped = rng.random() < cfg.dropout_rate
        straggler = rng.random() < cfg.straggler_rate
        delay = 0.0
        if straggler:
            delay = (float(rng.exponential(cfg.straggler_delay_s))
                     if cfg.straggler_jitter else cfg.straggler_delay_s)
        corrupt = rng.random() < cfg.corrupt_rate
        replay = rng.random() < cfg.replay_rate
        fail_attempts = (cfg.transient_failures
                         if rng.random() < cfg.transient_failure_rate else 0)
        return ClientFaultPlan(
            dropped=dropped, delay_s=delay, corrupt=corrupt,
            replay=replay, fail_attempts=fail_attempts,
        )
