"""Deterministic fault injection for cohort execution.

Models the failure modes a concrete-scalability simulation must cover
(OLYMPIA's dropout/straggler taxonomy) plus the adversarial transport
faults OLIVE's enclave must reject (corrupted and replayed
ciphertexts):

* **dropout** -- the client was securely sampled but never responds
  (battery, network loss);
* **straggler** -- the client responds after an injected delay drawn
  from an exponential (or fixed) distribution; delays beyond the
  runtime's per-client timeout are dropped without waiting;
* **corrupt** -- the ciphertext is tampered in transit, so enclave AE
  verification rejects it;
* **replay** -- the same ciphertext is delivered twice in one round;
  the enclave must accept exactly one copy;
* **transient worker failure** -- the execution substrate (not the
  client) fails a number of attempts before succeeding, exercising the
  runtime's retry-with-backoff path.

Every decision is a pure function of ``(entropy, round, client)``
through :mod:`repro.runtime.seeding`'s ``STREAM_FAULT`` stream, so a
fault plan is identical across executors, worker counts, and re-runs:
fault-path tests can replay a faulty round bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from .seeding import STREAM_ENCLAVE, STREAM_FAULT, derive_rng


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection rates and shapes (all rates are per-client)."""

    dropout_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_delay_s: float = 0.02   # mean injected delay
    straggler_jitter: bool = True     # exponential around the mean when True
    corrupt_rate: float = 0.0
    replay_rate: float = 0.0
    transient_failure_rate: float = 0.0
    transient_failures: int = 1       # failing attempts per affected client

    def __post_init__(self) -> None:
        for name in ("dropout_rate", "straggler_rate", "corrupt_rate",
                     "replay_rate", "transient_failure_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.straggler_delay_s < 0:
            raise ValueError("straggler_delay_s must be >= 0")
        if self.transient_failures < 0:
            raise ValueError("transient_failures must be >= 0")

    @property
    def active(self) -> bool:
        """True when any fault mode has a non-zero rate."""
        return any((self.dropout_rate, self.straggler_rate,
                    self.corrupt_rate, self.replay_rate,
                    self.transient_failure_rate))


@dataclass(frozen=True)
class ClientFaultPlan:
    """The faults one ``(round, client)`` pair experiences."""

    dropped: bool = False
    delay_s: float = 0.0
    corrupt: bool = False
    replay: bool = False
    fail_attempts: int = 0

    @property
    def clean(self) -> bool:
        """True when this client runs fault-free."""
        return (not self.dropped and self.delay_s == 0.0
                and not self.corrupt and not self.replay
                and self.fail_attempts == 0)


CLEAN_PLAN = ClientFaultPlan()


class FaultInjector:
    """Draws one deterministic :class:`ClientFaultPlan` per (round, client).

    The draw order inside :meth:`plan` is fixed (dropout, straggler,
    delay, corrupt, replay, transient) so plans stay stable under
    config changes to unrelated rates only when derived rates change --
    the determinism contract is per-configuration, not cross-config.
    """

    def __init__(self, config: FaultConfig, entropy: int) -> None:
        self.config = config
        self.entropy = entropy

    def plan(self, round_index: int, client_id: int) -> ClientFaultPlan:
        """The fault plan for ``client_id`` in ``round_index``."""
        cfg = self.config
        if not cfg.active:
            return CLEAN_PLAN
        rng = derive_rng(self.entropy, STREAM_FAULT, round_index, client_id)
        dropped = rng.random() < cfg.dropout_rate
        straggler = rng.random() < cfg.straggler_rate
        delay = 0.0
        if straggler:
            delay = (float(rng.exponential(cfg.straggler_delay_s))
                     if cfg.straggler_jitter else cfg.straggler_delay_s)
        corrupt = rng.random() < cfg.corrupt_rate
        replay = rng.random() < cfg.replay_rate
        fail_attempts = (cfg.transient_failures
                         if rng.random() < cfg.transient_failure_rate else 0)
        return ClientFaultPlan(
            dropped=dropped, delay_s=delay, corrupt=corrupt,
            replay=replay, fail_attempts=fail_attempts,
        )


# ----------------------------------------------------------------------
# Server-side (enclave) faults: the sharded aggregation service
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EnclaveFaultConfig:
    """Fault rates for the aggregation service's own enclaves.

    The server-side counterpart of :class:`FaultConfig`: where client
    faults only ever *exclude* contributions, enclave faults attack the
    aggregation topology itself -- a leaf crashing mid-shard, a leaf
    machine dying outright (forcing failover to a sibling), a straggler
    leaf blowing its shard deadline, and the root enclave restarting
    between partial-aggregate combines.

    * ``leaf_crash_rate`` -- per ``(round, shard, attempt)``: the
      executing leaf crashes partway through its shard, losing all
      volatile state back to its last sealed checkpoint;
    * ``crash_fatal_rate`` -- a crash is fatal for the leaf *machine*
      (restart impossible; the shard fails over to a surviving leaf)
      rather than a process crash (restart in place);
    * ``leaf_straggler_rate`` / ``leaf_straggler_delay_s`` -- the
      attempt is delayed; delays are adjudicated against the per-shard
      deadline *analytically* so decisions replay deterministically;
    * ``root_restart_rate`` -- per round: the root enclave restarts
      partway through combining sealed partials and recovers from its
      own checkpoint.
    """

    leaf_crash_rate: float = 0.0
    crash_fatal_rate: float = 0.5
    leaf_straggler_rate: float = 0.0
    leaf_straggler_delay_s: float = 0.05   # mean injected delay
    leaf_straggler_jitter: bool = True
    root_restart_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("leaf_crash_rate", "crash_fatal_rate",
                     "leaf_straggler_rate", "root_restart_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.leaf_straggler_delay_s < 0:
            raise ValueError("leaf_straggler_delay_s must be >= 0")

    @property
    def active(self) -> bool:
        """True when any enclave fault mode has a non-zero rate."""
        return any((self.leaf_crash_rate, self.leaf_straggler_rate,
                    self.root_restart_rate))


@dataclass(frozen=True)
class LeafFaultPlan:
    """Faults one ``(round, shard, attempt)`` execution experiences.

    ``crash_fraction`` positions the crash within the attempt's
    *remaining* work (the deliveries past the resume point), so a
    recovered attempt that crashes again still makes the progress its
    checkpoints sealed.
    """

    crash_fraction: float | None = None   # None: no crash this attempt
    fatal: bool = False                   # crash kills the leaf machine
    delay_s: float = 0.0

    @property
    def clean(self) -> bool:
        """True when this attempt runs fault-free."""
        return self.crash_fraction is None and self.delay_s == 0.0


@dataclass(frozen=True)
class RootFaultPlan:
    """The root enclave's faults for one round."""

    restart_fraction: float | None = None  # None: no restart this round


CLEAN_LEAF_PLAN = LeafFaultPlan()
CLEAN_ROOT_PLAN = RootFaultPlan()


class EnclaveFaultInjector:
    """Deterministic server-side fault plans on ``STREAM_ENCLAVE``.

    Leaf plans are keyed by ``(round, shard, attempt)`` -- the
    *shard*, not the executing leaf, so a failed-over shard draws the
    same fault sequence whichever sibling picks it up, and a replay of
    the same seed and config reproduces every crash, failover, and
    deadline miss bit-for-bit.  The draw order inside each plan is
    fixed (crash, fraction, fatal, straggler, delay).
    """

    #: Root plans use this shard slot (shard indices are < this).
    ROOT_KEY = 0xFFFF_FFFF

    def __init__(self, config: EnclaveFaultConfig, entropy: int) -> None:
        self.config = config
        self.entropy = int(entropy)

    def leaf_plan(self, round_index: int, shard_index: int,
                  attempt: int) -> LeafFaultPlan:
        """The fault plan for one execution attempt of one shard."""
        cfg = self.config
        if not cfg.active:
            return CLEAN_LEAF_PLAN
        rng = derive_rng(self.entropy, STREAM_ENCLAVE, round_index,
                         shard_index, attempt)
        crash = rng.random() < cfg.leaf_crash_rate
        crash_fraction = float(rng.random()) if crash else None
        fatal = crash and rng.random() < cfg.crash_fatal_rate
        straggler = rng.random() < cfg.leaf_straggler_rate
        delay = 0.0
        if straggler:
            delay = (float(rng.exponential(cfg.leaf_straggler_delay_s))
                     if cfg.leaf_straggler_jitter
                     else cfg.leaf_straggler_delay_s)
        return LeafFaultPlan(crash_fraction=crash_fraction, fatal=fatal,
                             delay_s=delay)

    def root_plan(self, round_index: int) -> RootFaultPlan:
        """The root enclave's restart plan for one round."""
        cfg = self.config
        if cfg.root_restart_rate == 0.0:
            return CLEAN_ROOT_PLAN
        rng = derive_rng(self.entropy, STREAM_ENCLAVE, round_index,
                         self.ROOT_KEY, 0)
        if rng.random() < cfg.root_restart_rate:
            return RootFaultPlan(restart_fraction=float(rng.random()))
        return CLEAN_ROOT_PLAN
