"""Cohort runtime: parallel, fault-tolerant client execution.

The subsystem OLIVE's round loop submits sampled cohorts through:

* pluggable executors (``serial`` | ``thread`` | ``process`` with
  shared-memory model broadcast | ``vectorized`` whole-cohort tensor
  batching) -- :mod:`repro.runtime.executors`;
* per-``(round, client)`` seed derivation making every executor
  bit-identical -- :mod:`repro.runtime.seeding`;
* deterministic fault injection (dropout, stragglers, corrupt/replayed
  ciphertexts, transient worker failures) -- :mod:`repro.runtime.faults`;
* retries with exponential backoff, per-client timeouts, and a
  minimum-quorum completion policy -- :mod:`repro.runtime.cohort`.

Typical use::

    from repro.runtime import CohortRuntime, FaultConfig, RuntimeConfig

    cfg = RuntimeConfig(executor="thread", workers=8,
                        faults=FaultConfig(dropout_rate=0.05))
    system = OliveSystem(model, clients, olive_config, runtime=cfg)
"""

from .cohort import (
    REASON_DROPOUT,
    REASON_FORCED,
    REASON_STRAGGLER,
    REASON_TIMEOUT,
    REASON_TRANSIENT,
    STATUS_DROPPED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_STRAGGLER,
    ClientOutcome,
    CohortResult,
    CohortRuntime,
    Delivery,
    record_failure_reason,
    run_train_tasks,
)
from .config import QuorumNotMetError, RuntimeConfig
from .executors import EXECUTORS, make_executor
from .faults import (
    ClientFaultPlan,
    EnclaveFaultConfig,
    EnclaveFaultInjector,
    FaultConfig,
    FaultInjector,
    LeafFaultPlan,
    RootFaultPlan,
)
from .jobs import (
    ClientJob,
    ClientJobResult,
    TrainTask,
    TransientWorkerError,
    WorkerContext,
    execute_client_job,
    execute_client_jobs_batch,
    execute_train_task,
)
from .seeding import (
    STREAM_ENCLAVE,
    STREAM_FAULT,
    STREAM_MODEL,
    STREAM_NONCE,
    STREAM_TEACHER,
    STREAM_TRAIN,
    derive_nonce,
    derive_nonces_batch,
    derive_rng,
    derive_rngs_batch,
    reseed_model,
    seed_sequence,
)

# Imported last: repro.core (pulled in transitively by shard leaves'
# oblivious kernels) imports the names bound above from this package.
from .shards import (  # noqa: E402
    ShardConfig,
    ShardedAggregator,
    ShardOutcome,
    ShardRoundReport,
    plan_shards,
)

__all__ = [
    "EXECUTORS",
    "REASON_DROPOUT",
    "REASON_FORCED",
    "REASON_STRAGGLER",
    "REASON_TIMEOUT",
    "REASON_TRANSIENT",
    "STATUS_DROPPED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_REJECTED",
    "STATUS_STRAGGLER",
    "STREAM_ENCLAVE",
    "STREAM_FAULT",
    "STREAM_MODEL",
    "STREAM_NONCE",
    "STREAM_TEACHER",
    "STREAM_TRAIN",
    "ClientFaultPlan",
    "ClientJob",
    "ClientJobResult",
    "ClientOutcome",
    "CohortResult",
    "CohortRuntime",
    "Delivery",
    "EnclaveFaultConfig",
    "EnclaveFaultInjector",
    "FaultConfig",
    "FaultInjector",
    "LeafFaultPlan",
    "QuorumNotMetError",
    "RootFaultPlan",
    "RuntimeConfig",
    "ShardConfig",
    "ShardOutcome",
    "ShardRoundReport",
    "ShardedAggregator",
    "TrainTask",
    "TransientWorkerError",
    "WorkerContext",
    "derive_nonce",
    "derive_nonces_batch",
    "derive_rng",
    "derive_rngs_batch",
    "execute_client_job",
    "execute_client_jobs_batch",
    "execute_train_task",
    "make_executor",
    "plan_shards",
    "record_failure_reason",
    "reseed_model",
    "run_train_tasks",
    "seed_sequence",
]
