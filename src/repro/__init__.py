"""repro -- OLIVE: Oblivious and Differentially Private Federated
Learning on a (simulated) Trusted Execution Environment.

Reproduction of Kato, Cao & Yoshikawa (VLDB 2023).  Subpackages:

* :mod:`repro.sgx` -- TEE simulator: traced memory, enclave runtime,
  remote attestation, authenticated encryption, cycle cost model, and
  the side-channel adversary.
* :mod:`repro.oblivious` -- oblivious primitives (o_mov / o_swap),
  Batcher's bitonic sorting network, oblivious shuffle.
* :mod:`repro.oram` -- Path ORAM comparator.
* :mod:`repro.fl` -- FL substrate: numpy models, synthetic datasets,
  clients, sparsification, and plain DP-FedAVG.
* :mod:`repro.dp` -- Gaussian mechanism, RDP accountant, LDP/shuffle
  baselines.
* :mod:`repro.core` -- the paper's contribution: the Linear / Baseline
  / Advanced / PathORAM aggregators, grouping optimization, DO
  alternative, obliviousness verifier, and the OLIVE system.
* :mod:`repro.attack` -- the sensitive-label inference attack.
* :mod:`repro.obs` -- telemetry: spans, counters, gauges, sinks.

Quickstart::

    from repro.core import OliveConfig, OliveSystem
    from repro.fl import SPECS, SyntheticClassData, build_model, partition_clients

    gen = SyntheticClassData(SPECS["mnist"], seed=0)
    clients = partition_clients(gen, n_clients=40, samples_per_client=40,
                                labels_per_client=2)
    system = OliveSystem(build_model("mnist_mlp"), clients,
                         OliveConfig(aggregator="advanced"))
    system.run(rounds=3)
"""

from . import analysis, attack, core, dp, fl, oblivious, obs, oram, sgx

__version__ = "1.0.0"

__all__ = ["analysis", "attack", "core", "dp", "fl", "oblivious", "obs",
           "oram", "sgx", "__version__"]
