"""Generality of the sparsification leak: no TEE required (Sec. 3.3).

The paper stresses that the gradient-index side channel is not an SGX
artifact: sparse secure aggregation (SparseSecAgg-style pairwise
masking) hides every gradient *value* cryptographically, yet the index
sets must travel in plaintext for the server to align the masked
values -- and those index sets are exactly what the label-inference
attack consumes.

This example runs one federated round with sparse secure aggregation
(no enclave anywhere), hands the plaintext index sets to the Section 4
attack, and reports the leakage both operationally (attack accuracy)
and information-theoretically (bits of label entropy revealed).

Run:  python examples/secagg_generality.py
"""

import numpy as np

from repro.analysis import mutual_information, normalized_leakage
from repro.attack.classifiers import JacAttack, decide_labels
from repro.attack.leakage import coarsen_indices
from repro.attack.pipeline import all_accuracy, chance_top1, top1_accuracy
from repro.fl import (
    SPECS,
    SyntheticClassData,
    TrainingConfig,
    build_model,
    compute_update,
    partition_clients,
    server_test_data_by_label,
)
from repro.fl.secagg import aggregate_sparse_masked, setup_pairwise_seeds

N_CLIENTS = 16
LABELS_PER_CLIENT = 2
TRAIN = TrainingConfig(local_epochs=2, local_lr=0.25, batch_size=16,
                       sparse_ratio=0.1, clip=1.0)


def main() -> None:
    print("== Sparse secure aggregation leaks like a TEE side channel ==")
    spec = SPECS["tiny"]
    gen = SyntheticClassData(spec, seed=0)
    clients = partition_clients(gen, N_CLIENTS, 40, LABELS_PER_CLIENT, seed=0)
    model = build_model(spec.model_name, seed=0)
    d = model.num_params

    # Clients train locally and upload pairwise-masked sparse updates.
    rng = np.random.default_rng(0)
    w0 = model.get_flat()
    updates = [compute_update(model, w0, c, TRAIN, rng) for c in clients]
    secagg = setup_pairwise_seeds([c.client_id for c in clients], seed=1)
    uploads = [secagg[u.client_id].mask_sparse(u, d) for u in updates]

    # The server decodes only the aggregate... and the index sets.
    _, leaked = aggregate_sparse_masked(uploads, d)
    print(f"{len(uploads)} masked uploads; gradient values hidden; "
          f"index sets observed in plaintext.")

    # Information-theoretic leakage.
    observations = [leaked[c.client_id] for c in clients]
    labels = [c.label_set for c in clients]
    bits = mutual_information(observations, labels)
    frac = normalized_leakage(observations, labels)
    print(f"I(indices; label set) = {bits:.2f} bits "
          f"({frac:.0%} of the label entropy)")

    # Operational leakage: JAC attack over the single observed round.
    test_data = server_test_data_by_label(gen, 30, seed=9)
    teacher = {0: {}}
    teacher_rng = np.random.default_rng(7)
    from repro.fl.datasets import ClientData

    for label, x in test_data.items():
        samples = []
        for shard in np.array_split(np.arange(len(x)), 3):
            data = ClientData(-1, x[shard], np.full(len(shard), label),
                              frozenset([label]))
            update = compute_update(model, w0, data, TRAIN, teacher_rng)
            samples.append(coarsen_indices(update.indices))
        teacher[0][label] = samples

    attack = JacAttack()
    true_labels = {c.client_id: c.label_set for c in clients}
    scores, inferred = {}, {}
    for c in clients:
        s = attack.score({0: leaked[c.client_id]}, teacher, spec.n_labels)
        scores[c.client_id] = s
        inferred[c.client_id] = decide_labels(s, known_count=LABELS_PER_CLIENT)

    print(f"attack exact-set accuracy: "
          f"{all_accuracy(inferred, true_labels):.2f}; "
          f"top-1: {top1_accuracy(scores, true_labels):.2f} "
          f"(chance {chance_top1(true_labels, spec.n_labels):.2f})")
    print("\nConclusion: encryption of values is not enough; any")
    print("data-dependent sparsification needs oblivious aggregation.")


if __name__ == "__main__":
    main()
