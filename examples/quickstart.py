"""Quickstart: differentially private federated learning on OLIVE.

Runs the full Algorithm 1 pipeline end to end on a small synthetic
task:

1. provision an enclave and remote-attest every client;
2. run a few DP-FedAVG rounds with fully-oblivious Advanced
   aggregation inside the enclave;
3. report model accuracy and the accumulated (epsilon, delta) budget;
4. machine-verify obliviousness: re-run a traced round on different
   data and check the adversary-visible access pattern is identical.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import OliveConfig, OliveSystem, traces_equal
from repro.fl import (
    SPECS,
    SyntheticClassData,
    TrainingConfig,
    build_model,
    partition_clients,
)


def build_system(data_seed: int, system_seed: int = 7) -> OliveSystem:
    gen = SyntheticClassData(SPECS["tiny"], seed=data_seed)
    clients = partition_clients(
        gen, n_clients=30, samples_per_client=40, labels_per_client=2,
        seed=data_seed,
    )
    config = OliveConfig(
        sample_rate=0.5,
        noise_multiplier=1.12,      # the paper's default sigma
        delta=1e-5,
        aggregator="advanced",      # fully oblivious (Algorithm 4)
        training=TrainingConfig(
            local_epochs=2, local_lr=0.3, batch_size=16,
            sparse_ratio=0.1, clip=1.0,
        ),
    )
    return OliveSystem(build_model("tiny_mlp", seed=0), clients, config,
                       seed=system_seed)


def main() -> None:
    print("== OLIVE quickstart ==")
    system = build_system(data_seed=0)
    print(f"enclave measurement: {system.enclave.measurement.hex()[:16]}...")
    print(f"clients attested:    {len(system.client_keys)}")
    print(f"model parameters:    {system.d}")

    gen = SyntheticClassData(SPECS["tiny"], seed=0)
    x_test, y_test = gen.balanced(30, np.random.default_rng(123))
    print(f"\ninitial accuracy:    {system.evaluate(x_test, y_test):.3f}")

    for log in system.run(rounds=5):
        print(
            f"round {log.round_index}: {len(log.participants)} participants, "
            f"epsilon = {log.epsilon:.3f}"
        )
    print(f"final accuracy:      {system.evaluate(x_test, y_test):.3f}")
    print(f"privacy budget:      ({system.accountant.epsilon:.3f}, 1e-05)-DP")

    # Obliviousness check: two systems over *different* client data,
    # same protocol randomness -> identical adversary view.
    print("\nverifying obliviousness of the aggregation trace...")
    a = build_system(data_seed=1).run_round(traced=True)
    b = build_system(data_seed=2).run_round(traced=True)
    assert a.participants == b.participants
    identical = traces_equal(a.trace, b.trace)
    print(f"trace length: {len(a.trace)} accesses; identical across "
          f"datasets: {identical}")
    assert identical, "Advanced aggregation must be fully oblivious"
    print("OK: the memory access pattern is data-independent.")


if __name__ == "__main__":
    main()
