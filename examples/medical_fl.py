"""Medical federated learning: the paper's motivating scenario.

Hospitals collaboratively train a diagnosis classifier without sharing
patient records (the Section 4.1 example: "when training federated
learning on medical image data such as breast cancer, the label of
cancer or not is very sensitive").  Each clinic treats only a few
diagnosis categories, so its *label set* reveals what conditions its
patients have -- exactly what the gradient-index side channel leaks.

This example models 24 clinics over a Purchase100-style binary tabular
feature space (600 clinical indicators, 20 diagnosis categories), runs
OLIVE with top-k sparsified uploads (bandwidth-constrained clinics),
tracks the client-level DP budget across rounds, and finally verifies
that a curious cloud operator watching the enclave learns nothing:
clinic observations under the oblivious aggregator are
indistinguishable.

Run:  python examples/medical_fl.py
"""

import numpy as np

from repro.attack import observe_round
from repro.core import OliveConfig, OliveSystem
from repro.fl import (
    DatasetSpec,
    SyntheticClassData,
    TrainingConfig,
    partition_clients,
)
from repro.fl.models import Dropout, Linear, ReLU, Sequential

N_CLINICS = 24
DIAGNOSES = 20
CLINICAL_FEATURES = 120   # summarised clinical indicators
CONDITIONS_PER_CLINIC = 3
ROUNDS = 8


def build_clinic_model(seed: int = 0) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential([
        Linear(CLINICAL_FEATURES, 16, rng),
        ReLU(),
        Dropout(0.5, rng),
        Linear(16, DIAGNOSES, rng),
    ])


def main() -> None:
    print("== Federated diagnosis model across clinics (OLIVE) ==")
    spec = DatasetSpec("clinics", (CLINICAL_FEATURES,), DIAGNOSES,
                       "custom")
    gen = SyntheticClassData(spec, seed=0)
    clinics = partition_clients(
        gen, N_CLINICS, samples_per_client=60,
        labels_per_client=CONDITIONS_PER_CLINIC, fixed=False, seed=0,
    )
    print(f"{N_CLINICS} clinics; conditions treated per clinic: "
          f"{sorted({len(c.label_set) for c in clinics})}")

    model = build_clinic_model(seed=0)
    system = OliveSystem(
        model, clinics,
        OliveConfig(
            sample_rate=0.8,
            noise_multiplier=1.0,
            delta=1e-5,
            aggregator="advanced",
            group_size=8,               # Section 5.3 cache-friendly groups
            training=TrainingConfig(
                local_epochs=3, local_lr=0.3, batch_size=16,
                sparse_ratio=0.05,      # 95% bandwidth saving per upload
                clip=2.0,
            ),
        ),
        seed=11,
    )
    print(f"model: {system.d} parameters; uploads are top-5% sparsified "
          f"({int(np.ceil(0.05 * system.d))} weights each)")

    x_test, y_test = gen.balanced(25, np.random.default_rng(77))
    print(f"\ninitial accuracy: {system.evaluate(x_test, y_test):.3f} "
          f"(chance {1.0 / DIAGNOSES:.3f})")
    # Trace only the last round (traced element-level runs are slow;
    # the trace is shape-determined, so one round is representative).
    for log in system.run(ROUNDS - 1):
        print(f"round {log.round_index}: {len(log.participants):2d} clinics, "
              f"privacy spent epsilon = {log.epsilon:.3f}")
    log = system.run_round(traced=True)
    print(f"round {log.round_index}: {len(log.participants):2d} clinics, "
          f"privacy spent epsilon = {log.epsilon:.3f}")
    print(f"final accuracy:   {system.evaluate(x_test, y_test):.3f}")

    # What does the curious cloud operator see?
    print("\ncloud operator's view of the last round's aggregation:")
    obs = observe_round(system.history[-1])
    distinct = {frozenset(s) for s in obs.observed.values()}
    print(f"  per-clinic observed index sets: "
          f"{len(obs.observed)} clinics, {len(distinct)} distinct view(s)")
    assert len(distinct) <= 1, "oblivious aggregation must be uniform"
    print("  every clinic's contribution produced the identical access")
    print("  pattern: diagnosis specialties stay private.")


if __name__ == "__main__":
    main()
