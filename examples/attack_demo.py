"""Attack demo: sensitive-label inference from memory access patterns.

Reproduces the paper's Section 4 threat end to end and then shows the
Section 5 defense neutralizing it:

* phase 1 -- OLIVE misconfigured with the non-oblivious Linear
  aggregator: the semi-honest server records the enclave's access
  pattern, recovers every client's top-k gradient indices, and infers
  which sensitive labels each client's training data contains (JAC /
  NN / NN-single attacks, `all` and `top-1` metrics);
* phase 2 -- the same protocol with the fully-oblivious Advanced
  aggregator: the trace is data-independent and the attack collapses
  to chance.

Run:  python examples/attack_demo.py
"""

from repro.attack import AttackConfig, chance_top1, run_attack
from repro.core import OliveConfig, OliveSystem
from repro.fl import (
    SPECS,
    SyntheticClassData,
    TrainingConfig,
    build_model,
    partition_clients,
    server_test_data_by_label,
)

TRAIN = TrainingConfig(local_epochs=1, local_lr=0.2, batch_size=16,
                       sparse_ratio=0.1, clip=1.0)
LABELS_PER_CLIENT = 2


def run_phase(aggregator: str):
    spec = SPECS["tiny"]
    gen = SyntheticClassData(spec, seed=0)
    clients = partition_clients(gen, 30, 40, LABELS_PER_CLIENT, seed=0)
    model = build_model(spec.model_name, seed=0)
    system = OliveSystem(
        model, clients,
        OliveConfig(sample_rate=0.5, noise_multiplier=1.12,
                    aggregator=aggregator, training=TRAIN),
        seed=0,
    )
    logs = system.run(3, traced=True)  # server watching the side channel
    test_data = server_test_data_by_label(gen, 30, seed=99)
    true_labels = {c.client_id: c.label_set for c in clients}
    results = {}
    for method in ("jac", "nn", "nn_single"):
        res = run_attack(
            logs, model, test_data, TRAIN, true_labels, system.d,
            AttackConfig(method=method, known_label_count=LABELS_PER_CLIENT,
                         nn_epochs=20, nn_hidden=48),
        )
        results[method] = res
    chance = chance_top1(true_labels, spec.n_labels)
    return results, chance


def report(title, results, chance):
    print(f"\n--- {title} ---")
    print(f"{'method':<10} {'all (exact set)':<16} {'top-1':<8} chance top-1")
    for method, res in results.items():
        print(f"{method:<10} {res.all_accuracy:<16.3f} "
              f"{res.top1_accuracy:<8.3f} {chance:.3f}")


def main() -> None:
    print("== OLIVE attack demonstration ==")
    print("Each of 30 clients holds 2 sensitive labels out of 6;")
    print("the server tries to infer each client's label set from the")
    print("enclave's memory access pattern during aggregation.")

    leaky, chance = run_phase("linear")
    report("Linear aggregation (NOT oblivious) -- the attack works",
           leaky, chance)

    defended, chance = run_phase("advanced")
    report("Advanced aggregation (fully oblivious) -- defense holds",
           defended, chance)

    assert leaky["jac"].top1_accuracy > 2 * chance
    assert defended["jac"].top1_accuracy <= chance + 0.3
    print("\nConclusion: identical learning output, but the oblivious")
    print("aggregator leaves the adversary at chance level.")


if __name__ == "__main__":
    main()
