"""Train -> checkpoint -> serve: the full OLIVE model lifecycle.

1. train a few DP-FedAVG rounds with oblivious aggregation;
2. save the training checkpoint (weights + privacy ledger);
3. load the checkpoint into the oblivious serving engine (the
   architecture is inferred from the weight count);
4. serve sealed requests through the concurrent batch scheduler and
   open the sealed responses client-side;
5. machine-verify serving obliviousness: two batches of different
   inputs must record byte-identical enclave traces.

Run:  python examples/serve_roundtrip.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import OliveConfig, OliveSystem
from repro.core.checkpoint import save_checkpoint
from repro.fl import (
    SPECS,
    SyntheticClassData,
    TrainingConfig,
    build_model,
    partition_clients,
)
from repro.serving import (
    InferenceServer,
    ObliviousInferenceEngine,
    ServingConfig,
    load_serving_model,
    open_response,
    seal_request,
)
from repro.sgx.enclave import Enclave, provision_enclave_with_clients


def main() -> None:
    print("== OLIVE serve round-trip ==")
    spec = SPECS["tiny"]
    gen = SyntheticClassData(spec, seed=0)
    clients = partition_clients(
        gen, n_clients=20, samples_per_client=30, labels_per_client=2,
        seed=0,
    )
    config = OliveConfig(
        sample_rate=0.5, noise_multiplier=1.12, aggregator="advanced",
        training=TrainingConfig(local_epochs=2, local_lr=0.3,
                                batch_size=16, sparse_ratio=0.1, clip=1.0),
    )
    system = OliveSystem(build_model(spec.model_name, seed=0), clients,
                         config, seed=7)
    system.run(rounds=2)
    print(f"trained {spec.model_name} for 2 rounds "
          f"(epsilon = {system.accountant.epsilon:.3f})")

    with tempfile.TemporaryDirectory() as tmp:
        ckpt = Path(tmp) / "model.npz"
        save_checkpoint(system, ckpt)
        system.close()
        print(f"checkpoint written: {ckpt.name}")

        model, meta = load_serving_model(ckpt)
        print(f"checkpoint loaded: inferred architecture "
              f"{meta['model_name']!r}, {model.num_params} parameters")

        enclave = Enclave(seed=0)
        serving_clients = [1, 2, 3]
        keys = provision_enclave_with_clients(enclave, serving_clients)
        engine = ObliviousInferenceEngine(model, batch_size=4,
                                          oblivious=True, enclave=enclave)

        rng = np.random.default_rng(1)
        wanted = rng.integers(0, spec.n_labels, size=8)
        xs = gen.sample(wanted, rng)
        with InferenceServer(engine,
                             ServingConfig(max_wait_s=0.002)) as server:
            futures = []
            for i in range(len(wanted)):
                cid = serving_clients[i % len(serving_clients)]
                sealed = seal_request(keys[cid], xs[i])
                futures.append((cid, server.submit(cid, sealed)))
            responses = [(cid, f.result(timeout=10)) for cid, f in futures]
        print(f"served {server.requests_served} sealed request(s) in "
              f"{server.batches} batch(es), {server.padded_slots} padded "
              f"slot(s)")
        for i, (cid, sealed) in enumerate(responses[:4]):
            label, logits = open_response(keys[cid], sealed)
            print(f"  client {cid}: sent class {wanted[i]}, served "
                  f"class {label} (top logit {logits.max():.2f})")

        print("\nverifying serving obliviousness...")
        a = engine.infer_batch(gen.sample(
            rng.integers(0, spec.n_labels, size=4), rng), traced=True)
        digest_a = a.trace.signature_digest()
        b = engine.infer_batch(gen.sample(
            rng.integers(0, spec.n_labels, size=4), rng), traced=True)
        identical = digest_a == b.trace.signature_digest()
        print(f"trace length: {len(a.trace)} accesses; identical across "
              f"inputs: {identical}")
        assert identical, "oblivious serving trace must be input-independent"
        print("OK: the serving access pattern is data-independent.")


if __name__ == "__main__":
    main()
