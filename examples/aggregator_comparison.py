"""Aggregator comparison: correctness, obliviousness, and speed.

A compact tour of the four server-side aggregation algorithms on one
synthetic round: all compute the same result; they differ in what the
side channel sees and what they cost.  Also demonstrates the Section
5.3 grouping optimization and the Section 5.4 differentially-oblivious
alternative with its padding-overhead analysis.

Run:  python examples/aggregator_comparison.py
"""

import time

import numpy as np

from repro.core import (
    AGGREGATORS,
    DoParameters,
    aggregate_do,
    aggregate_grouped,
    do_padding_overhead,
    traces_equal,
)
from repro.fl import LocalUpdate
from repro.sgx import Trace

N, K, D = 50, 20, 2000


def make_round(seed):
    rng = np.random.default_rng(seed)
    updates = []
    for cid in range(N):
        idx = np.sort(rng.choice(D, size=K, replace=False)).astype(np.int64)
        updates.append(LocalUpdate(cid, idx, rng.normal(size=K)))
    return updates


def main() -> None:
    print(f"== Aggregator comparison: n={N} clients, k={K}, d={D} ==\n")
    updates = make_round(0)
    reference = AGGREGATORS["linear"].run(updates, D)

    print(f"{'algorithm':<12} {'seconds':<10} {'oblivious (sparse)':<20} correct")
    for name, spec in AGGREGATORS.items():
        start = time.perf_counter()
        result = spec.run(updates, D)
        elapsed = time.perf_counter() - start
        ok = np.allclose(result, reference)
        print(f"{name:<12} {elapsed:<10.4f} {spec.oblivious_sparse:<20} {ok}")

    # Trace-level proof on a smaller instance (traced runs are slow).
    print("\ntrace comparison on a small instance (n=4, k=3, d=24):")
    small_a = [LocalUpdate(c, np.sort(np.random.default_rng(c).choice(
        24, 3, replace=False)).astype(np.int64), np.ones(3)) for c in range(4)]
    small_b = [LocalUpdate(c, np.sort(np.random.default_rng(c + 50).choice(
        24, 3, replace=False)).astype(np.int64), np.ones(3)) for c in range(4)]
    for name in ("linear", "baseline", "advanced"):
        ta, tb = Trace(), Trace()
        AGGREGATORS[name].run_traced(small_a, 24, ta)
        AGGREGATORS[name].run_traced(small_b, 24, tb)
        word = traces_equal(ta, tb)
        line = traces_equal(ta, tb, granularity="cacheline",
                            itemsizes={"g": 8, "g_star": 4})
        print(f"  {name:<10} word-identical: {word!s:<6} "
              f"cacheline-identical: {line}")

    # Grouping (Section 5.3) -- same result, cache-sized work units.
    grouped = aggregate_grouped(updates, D, group_size=10)
    print(f"\ngrouped advanced (h=10) matches: "
          f"{np.allclose(grouped, reference)}")

    # Differentially oblivious alternative (Section 5.4).
    params = DoParameters(epsilon=1.0, sensitivity=K)
    agg, histogram = aggregate_do(updates, D, params,
                                  np.random.default_rng(0))
    overhead = do_padding_overhead(N, K, D, params)
    print(f"\nDO aggregation matches: {np.allclose(agg, reference)}")
    print(f"DO padding overhead vs fully-oblivious Advanced: "
          f"{overhead['overhead_ratio']:.1f}x "
          f"({overhead['expected_dummies']:.0f} expected dummies) -- the")
    print("paper's reason to prefer full obliviousness in FL.")


if __name__ == "__main__":
    main()
