"""Oblivious-serving benchmark: throughput, latency, and leakage.

Measures the serving subsystem three ways on a trained ``tiny_mlp``:

* **throughput vs batch size** -- a closed-loop load of sealed
  requests through the batch scheduler for each fixed batch shape, in
  both modes; the oblivious/plain ratio is the price of the full-table
  scan (the serving analogue of Figure 7's oblivious overhead);
* **latency under open-loop arrivals** -- seeded exponential
  interarrival gaps drive the deadline batcher; p50/p95/p99 request
  latency from submit to sealed response;
* **attack-scored leakage** -- traced probe/victim batches through
  :func:`repro.attack.run_serving_attack` (JAC and NN): the oblivious
  engine must score AUC <= 0.55 while the plain row-read path scores
  measurably above it (these are asserted here and gated in CI via
  ``max_serving_leakage_auc`` / ``min_serving_throughput`` in
  ``bench_results/baseline.json``).

Set ``SERVING_BENCH_QUICK=1`` for the reduced CI workload.
"""

import os
import threading
import time

import numpy as np

from repro.attack import AttackConfig, run_serving_attack
from repro.fl.datasets import SPECS, SyntheticClassData
from repro.fl.models import build_model, softmax_cross_entropy
from repro.serving import (
    InferenceServer,
    ObliviousInferenceEngine,
    ServingConfig,
    seal_request,
)
from repro.sgx.enclave import Enclave, provision_enclave_with_clients

from .common import print_table, save_results

QUICK = bool(os.environ.get("SERVING_BENCH_QUICK"))

N_REQUESTS = 160 if QUICK else 1200
BATCH_SIZES = (4, 8, 16) if QUICK else (1, 4, 8, 16, 32)
HEADLINE_BATCH = 8
N_CLIENTS = 4
ATTACK_BATCHES = 6
SPEC = SPECS["tiny"]


def _trained_model(seed: int = 0):
    model = build_model(SPEC.model_name, seed=seed)
    data = SyntheticClassData(SPEC, seed=seed)
    rng = np.random.default_rng(seed)
    for _ in range(150):
        y = rng.integers(0, SPEC.n_labels, size=32)
        x = data.sample(y, rng)
        logits = model.forward(x, train=True)
        _, dlogits = softmax_cross_entropy(logits, y)
        model.backward(dlogits)
        model.sgd_step(0.1)
    return model, data


def _provisioned_engine(model, batch_size, oblivious):
    enclave = Enclave(seed=0)
    keys = provision_enclave_with_clients(
        enclave, list(range(1, N_CLIENTS + 1)))
    engine = ObliviousInferenceEngine(
        model, batch_size=batch_size, oblivious=oblivious, enclave=enclave)
    return engine, keys


def _closed_loop_rps(model, data, batch_size, oblivious, n_requests):
    """Requests/second with the submit queue kept saturated."""
    engine, keys = _provisioned_engine(model, batch_size, oblivious)
    rng = np.random.default_rng(1)
    labels = rng.integers(0, SPEC.n_labels, size=n_requests)
    xs = data.sample(labels, rng)
    sealed = [
        (1 + i % N_CLIENTS, seal_request(keys[1 + i % N_CLIENTS], xs[i]))
        for i in range(n_requests)
    ]
    t0 = time.perf_counter()
    with InferenceServer(engine, ServingConfig(max_wait_s=0.05)) as server:
        futures = [server.submit(cid, ct) for cid, ct in sealed]
        for future in futures:
            future.result(timeout=60)
    wall = time.perf_counter() - t0
    assert server.requests_served == n_requests
    return n_requests / wall


def _open_loop_latency(model, data, n_requests):
    """p50/p95/p99 request latency under seeded exponential arrivals."""
    engine, keys = _provisioned_engine(model, HEADLINE_BATCH, True)
    rng = np.random.default_rng(2)
    gaps = rng.exponential(0.002 / HEADLINE_BATCH, size=n_requests)
    labels = rng.integers(0, SPEC.n_labels, size=n_requests)
    xs = data.sample(labels, rng)
    latencies: list[float] = []
    lock = threading.Lock()
    with InferenceServer(engine, ServingConfig(max_wait_s=0.002)) as server:
        futures = []
        for i in range(n_requests):
            time.sleep(gaps[i])
            cid = 1 + i % N_CLIENTS
            t_submit = time.monotonic()
            future = server.submit(cid, seal_request(keys[cid], xs[i]))

            def _done(f, t0=t_submit):
                with lock:
                    latencies.append(time.monotonic() - t0)

            future.add_done_callback(_done)
            futures.append(future)
        for future in futures:
            future.result(timeout=60)
    lat_ms = 1e3 * np.asarray(latencies)
    return {
        "p50": float(np.percentile(lat_ms, 50)),
        "p95": float(np.percentile(lat_ms, 95)),
        "p99": float(np.percentile(lat_ms, 99)),
    }


def _traced_batches(engine, data, n_batches, seed):
    out = []
    rng = np.random.default_rng(seed)
    for _ in range(n_batches):
        y = rng.integers(0, SPEC.n_labels, size=engine.batch_size)
        out.append(engine.infer_batch(data.sample(y, rng), traced=True))
    return out


def _leakage_aucs(model, data, oblivious):
    engine, _ = _provisioned_engine(model, HEADLINE_BATCH, oblivious)
    probes = _traced_batches(engine, data, ATTACK_BATCHES, seed=11)
    victims = _traced_batches(engine, data, ATTACK_BATCHES, seed=22)
    aucs = {}
    for method in ("jac", "nn"):
        result = run_serving_attack(
            victims, probes, SPEC.n_labels,
            AttackConfig(method=method, nn_epochs=10))
        aucs[method] = result.auc
    return aucs


def test_serving():
    model, data = _trained_model()

    # -- throughput vs batch size, both modes --------------------------
    rows = []
    rps = {True: {}, False: {}}
    per_point = max(N_REQUESTS // 2, BATCH_SIZES[-1] * 4)
    for batch_size in BATCH_SIZES:
        for oblivious in (True, False):
            rps[oblivious][batch_size] = _closed_loop_rps(
                model, data, batch_size, oblivious, per_point)
        overhead = rps[False][batch_size] / rps[True][batch_size]
        rows.append([batch_size, f"{rps[True][batch_size]:.0f}",
                     f"{rps[False][batch_size]:.0f}", f"{overhead:.2f}x"])
    print_table(
        f"Serving throughput (closed loop, {per_point} requests/point)",
        ["batch", "oblivious req/s", "plain req/s", "oblivious cost"],
        rows,
    )

    # -- latency under open-loop arrivals ------------------------------
    latency = _open_loop_latency(model, data, N_REQUESTS)
    print_table(
        f"Request latency (open loop, batch {HEADLINE_BATCH}, "
        f"{N_REQUESTS} requests)",
        ["p50 ms", "p95 ms", "p99 ms"],
        [[f"{latency['p50']:.2f}", f"{latency['p95']:.2f}",
          f"{latency['p99']:.2f}"]],
    )

    # -- attack-scored leakage -----------------------------------------
    oblivious_aucs = _leakage_aucs(model, data, oblivious=True)
    plain_aucs = _leakage_aucs(model, data, oblivious=False)
    print_table(
        "Trace leakage (serving attack AUC; 0.5 = no signal)",
        ["method", "oblivious", "plain"],
        [[m, f"{oblivious_aucs[m]:.3f}", f"{plain_aucs[m]:.3f}"]
         for m in ("jac", "nn")],
    )

    throughput = rps[True][HEADLINE_BATCH]
    worst_oblivious = max(oblivious_aucs.values())
    best_plain = max(plain_aucs.values())
    save_results("serving", {
        "workload": {
            "requests": N_REQUESTS,
            "batch_sizes": list(BATCH_SIZES),
            "clients": N_CLIENTS,
            "quick": QUICK,
        },
        "throughput_by_batch": {
            "oblivious": {str(b): rps[True][b] for b in BATCH_SIZES},
            "plain": {str(b): rps[False][b] for b in BATCH_SIZES},
        },
        "serving_throughput_rps": throughput,
        "oblivious_overhead": rps[False][HEADLINE_BATCH] / throughput,
        "latency_p50_ms": latency["p50"],
        "latency_p95_ms": latency["p95"],
        "latency_p99_ms": latency["p99"],
        "serving_leakage_auc": worst_oblivious,
        "plain_leakage_auc": best_plain,
        "auc_separation": best_plain - worst_oblivious,
    })

    # The oblivious engine must be indistinguishable (the CI gate pins
    # the same bound via max_serving_leakage_auc), while the plain path
    # must demonstrably leak -- otherwise the attack lost its teeth and
    # the 0.5 above proves nothing.
    assert worst_oblivious <= 0.55, (
        f"oblivious serving leaked: AUC {worst_oblivious:.3f}")
    assert best_plain >= 0.7, (
        f"plain-mode attack lost its teeth: AUC {best_plain:.3f}")
    assert best_plain - worst_oblivious >= 0.2, "no oblivious/plain margin"
