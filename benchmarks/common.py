"""Shared helpers for the per-table / per-figure benchmark harness.

Every benchmark regenerates one table or figure of the paper at a
documented scale (EXPERIMENTS.md maps paper parameters to the scaled
ones and records the shape checks).  Results are printed as the same
rows/series the paper reports and appended to ``bench_results/`` so the
run leaves a machine-readable record.

The *scaled machine* used by the cost-model figures shrinks the paper's
memory hierarchy (1 MB L2 / 8 MB L3 / 96 MB EPC) by 256x so that the
scaled-down working sets exercise the same cache/EPC transitions the
paper's full-size workloads did on real SGX hardware.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.core.olive import OliveConfig, OliveSystem
from repro.fl.client import TrainingConfig
from repro.fl.datasets import (
    SPECS,
    SyntheticClassData,
    partition_clients,
    server_test_data_by_label,
)
from repro.fl.models import build_model
from repro.sgx.cost import CostParameters

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"

#: Wall clock starts when the benchmark module imports this helper, so
#: ``save_results`` can record each run's total wall time.
_BENCH_T0 = time.perf_counter()

# Setting BENCH_TELEMETRY=1 (the CI default for the quick trace-engine
# run) turns on global telemetry with an in-memory sink; every bench
# that calls ``save_results(name, ...)`` then archives its event stream
# next to its results as ``bench_results/<name>_telemetry.json``.
if os.environ.get("BENCH_TELEMETRY"):
    obs.configure(enabled=True, sinks=[obs.MemorySink()])

#: Paper machine scaled 256x down (same ratios: L2:L3:EPC = 1:8:96).
SCALED_MACHINE = CostParameters(
    l2_bytes=4 * 1024,
    l2_assoc=4,
    l3_bytes=32 * 1024,
    l3_assoc=8,
    epc_bytes=384 * 1024,
)

#: Client-side defaults mirroring the paper's (N, q, T, alpha, sigma) =
#: (1000, 0.1, 3, 0.1, 1.12), scaled to N=40, q=0.5 so each experiment
#: runs in seconds while keeping ~20 participants per round.
ATTACK_TRAINING = TrainingConfig(
    local_epochs=1, local_lr=0.2, batch_size=16, sparse_ratio=0.1, clip=1.0
)
ATTACK_ROUNDS = 3
ATTACK_N_CLIENTS = 40
ATTACK_SAMPLE_RATE = 0.5
ATTACK_NOISE = 1.12


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render one result table to stdout (the paper's rows/series)."""
    widths = [
        max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))
    print()


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def save_results(name: str, payload: dict) -> None:
    """Persist a benchmark's series under bench_results/<name>.json.

    Every payload additionally records the benchmark's wall time (since
    this module was imported) and, when telemetry is enabled, the path
    of the JSONL event stream archived alongside -- making the perf
    trajectory across PRs machine-readable.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = dict(payload)
    payload["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    payload["wall_seconds"] = round(time.perf_counter() - _BENCH_T0, 3)
    telemetry_file = obs.dump_jsonl(RESULTS_DIR / f"{name}_telemetry.json")
    if telemetry_file is not None:
        payload["telemetry_file"] = telemetry_file
    with open(RESULTS_DIR / f"{name}.json", "w") as f:
        json.dump(payload, f, indent=2, default=str)


def run_traced_fl(
    dataset: str,
    labels_per_client: int,
    fixed: bool = True,
    sparse_ratio: float = 0.1,
    noise_multiplier: float = ATTACK_NOISE,
    rounds: int = ATTACK_ROUNDS,
    n_clients: int = ATTACK_N_CLIENTS,
    seed: int = 0,
    aggregator: str = "linear",
):
    """One traced OLIVE run plus everything the attack needs."""
    spec = SPECS[dataset]
    gen = SyntheticClassData(spec, seed=seed)
    clients = partition_clients(
        gen, n_clients, 40, labels_per_client, fixed=fixed, seed=seed
    )
    model = build_model(spec.model_name, seed=seed)
    training = TrainingConfig(
        local_epochs=ATTACK_TRAINING.local_epochs,
        local_lr=ATTACK_TRAINING.local_lr,
        batch_size=ATTACK_TRAINING.batch_size,
        sparse_ratio=sparse_ratio,
        clip=ATTACK_TRAINING.clip,
    )
    system = OliveSystem(
        model, clients,
        OliveConfig(
            sample_rate=ATTACK_SAMPLE_RATE,
            noise_multiplier=noise_multiplier,
            aggregator=aggregator,
            training=training,
        ),
        seed=seed,
    )
    logs = system.run(rounds, traced=True)
    test_data = server_test_data_by_label(gen, 30, seed=seed + 99)
    true_labels = {c.client_id: c.label_set for c in clients}
    return system, model, logs, test_data, training, true_labels


def make_synthetic_updates(n: int, k: int, d: int, seed: int = 0):
    """Synthetic sparse gradients for the performance figures (5.5)."""
    from repro.fl.client import LocalUpdate

    rng = np.random.default_rng(seed)
    updates = []
    for cid in range(n):
        idx = np.sort(rng.choice(d, size=min(k, d), replace=False))
        updates.append(
            LocalUpdate(cid, idx.astype(np.int64),
                        rng.normal(size=len(idx)))
        )
    return updates
