"""Mega-cohort client-path benchmark: vectorized vs serial executor.

Times one full client round -- local training, sparsification, L2
clipping, and authenticated encryption for every sampled client --
through the serial reference executor and the vectorized executor that
processes the whole cohort as stacked tensors (batched seed
derivation, batched training, axis-1 sparsification, chunked batched
sealing).

The workload models cross-device federated learning: many clients,
each holding a small shard and training with a small local batch, so
the serial path is dominated by per-client Python/numpy dispatch
overhead that the vectorized path amortizes across the cohort.

Before any number is reported, the vectorized executor is asserted
**bit-identical** to serial on a 256-client cohort -- ciphertext bytes
included.  A speedup that changed a single byte would be a bug, not a
win.

Set ``MEGACOHORT_BENCH_QUICK=1`` for the reduced CI workload (1024
clients, with a >= 10x speedup floor also enforced by the regression
gate).  The full run sweeps cohort sizes up to 10^5 clients, timing
the serial reference directly up to 4096 clients and extrapolating it
linearly beyond (serial cost is per-client by construction).
"""

import os
import time

from repro.fl.client import TrainingConfig
from repro.fl.datasets import SPECS, SyntheticClassData, partition_clients
from repro.fl.models import build_model
from repro.runtime import CohortRuntime, RuntimeConfig
from repro.sgx import crypto

from .common import print_table, save_results

QUICK = bool(os.environ.get("MEGACOHORT_BENCH_QUICK"))

#: Cross-device client workload: 64-sample shards, batch 4, 2 local
#: epochs of DP-FedAVG with top-k sparsification, sealed uploads.
SAMPLES_PER_CLIENT = 64
TRAIN = TrainingConfig(local_epochs=2, local_lr=0.2, batch_size=4,
                       sparse_ratio=0.1, clip=1.0, sparsifier="top_k")

IDENTITY_CLIENTS = 256
QUICK_CLIENTS = 1024
#: Serial is timed directly up to this size and extrapolated beyond.
SERIAL_CAP = 4096
FULL_SWEEP = (4096, 16384, 65536, 100_000)
MIN_VECTORIZED_SPEEDUP = 10.0


def _build(executor, n_clients):
    gen = SyntheticClassData(SPECS["tiny"], seed=0)
    clients = partition_clients(gen, n_clients, SAMPLES_PER_CLIENT, 2,
                                seed=0)
    model = build_model("tiny_mlp", seed=0)
    keys = {c.client_id: crypto.generate_key(b"k%d" % c.client_id)
            for c in clients}
    runtime = CohortRuntime(RuntimeConfig(executor=executor), model,
                            clients, entropy=11, keys=keys)
    return runtime, [c.client_id for c in clients], model.get_flat()


def _time_round(executor, n_clients, reps=3, warm=1):
    """Best-of-``reps`` wall seconds for one cohort round (after
    ``warm`` warm-up rounds that populate caches and allocators)."""
    runtime, cohort, weights = _build(executor, n_clients)
    times = []
    with runtime:
        for r in range(warm + reps):
            t0 = time.perf_counter()
            runtime.run_cohort(r, cohort, weights, TRAIN)
            elapsed = time.perf_counter() - t0
            if r >= warm:
                times.append(elapsed)
    return min(times)


def _assert_identical(n_clients):
    """Serial and vectorized must agree byte-for-byte (ciphertexts)."""
    deliveries = {}
    for executor in ("serial", "vectorized"):
        runtime, cohort, weights = _build(executor, n_clients)
        with runtime:
            result = runtime.run_cohort(0, cohort, weights, TRAIN)
        deliveries[executor] = {
            d.client_id: d.ciphertext.to_bytes() for d in result.deliveries
        }
    assert deliveries["serial"] == deliveries["vectorized"], (
        "vectorized executor diverged from the serial reference"
    )


def test_megacohort_speedup():
    _assert_identical(IDENTITY_CLIENTS)

    series = []
    if QUICK:
        sweep = (QUICK_CLIENTS,)
        serial_reps, vector_reps = 2, 3
    else:
        sweep = FULL_SWEEP
        serial_reps, vector_reps = 2, 2

    serial_per_client = None
    quick_speedup = None
    for n in sweep:
        vector_wall = _time_round("vectorized", n, reps=vector_reps)
        if n <= SERIAL_CAP or QUICK:
            serial_wall = _time_round("serial", n, reps=serial_reps)
            serial_per_client = serial_wall / n
            serial_kind = "measured"
        else:
            serial_wall = serial_per_client * n
            serial_kind = "extrapolated"
        speedup = serial_wall / vector_wall
        if n == QUICK_CLIENTS:
            quick_speedup = speedup
        series.append({
            "n_clients": n,
            "serial_seconds": serial_wall,
            "serial_kind": serial_kind,
            "vectorized_seconds": vector_wall,
            "speedup": speedup,
        })

    print_table(
        f"Mega-cohort client path: {SAMPLES_PER_CLIENT} samples/client, "
        f"batch {TRAIN.batch_size}, {TRAIN.local_epochs} epochs, sealed "
        f"top-k uploads",
        ["clients", "serial s", "", "vectorized s", "speedup"],
        [[r["n_clients"], f"{r['serial_seconds']:.2f}",
          r["serial_kind"], f"{r['vectorized_seconds']:.2f}",
          f"{r['speedup']:.1f}x"] for r in series],
    )

    payload = {
        "workload": {
            "samples_per_client": SAMPLES_PER_CLIENT,
            "batch_size": TRAIN.batch_size,
            "local_epochs": TRAIN.local_epochs,
            "sparsifier": TRAIN.sparsifier,
            "sealed": True,
            "quick": QUICK,
        },
        "series": series,
    }
    if quick_speedup is not None:
        payload["vectorized_speedup"] = quick_speedup
    save_results("megacohort", payload)

    # Acceptance bar: the vectorized executor must clear 10x over the
    # serial reference on the 1024-client workload (the floor is also
    # enforced by the CI regression gate on the saved payload).
    if quick_speedup is not None:
        assert quick_speedup >= MIN_VECTORIZED_SPEEDUP
    # The full sweep must complete a 10^5-client round.
    if not QUICK:
        assert series[-1]["n_clients"] == 100_000
