"""Figure 10: aggregation time vs model size d (synthetic gradients).

Sweeps d at the paper's alpha = 0.01 and n = 100 (so nk = d) and times
the four aggregators.  Paper shape: Advanced is roughly an order of
magnitude faster than Baseline at large d and far faster than
PathORAM; Baseline wins only when the model is trivially small; the
non-oblivious Linear lower-bounds everyone.

Path ORAM is executed up to d = 4096 and linearly extrapolated per
ORAM access beyond that (its per-access cost is size-stable at these
tree heights); the extrapolation is marked in the output.
"""

import time

from repro.core.aggregation import (
    aggregate_advanced,
    aggregate_baseline,
    aggregate_linear,
    aggregate_path_oram,
)

from .common import make_synthetic_updates, print_table, save_results

D_SWEEP = (1024, 4096, 16384, 65536)
ALPHA = 0.01
N_CLIENTS = 100
ORAM_MAX_D = 4096


def _time(fn, *args, **kwargs):
    start = time.perf_counter()
    fn(*args, **kwargs)
    return time.perf_counter() - start


def test_fig10_aggregation_time_vs_model_size(benchmark):
    def experiment():
        series = {"d": [], "linear": [], "baseline": [], "advanced": [],
                  "path_oram": [], "oram_extrapolated": []}
        oram_per_access = None
        for d in D_SWEEP:
            k = max(1, int(ALPHA * d))
            updates = make_synthetic_updates(N_CLIENTS, k, d, seed=0)
            series["d"].append(d)
            series["linear"].append(_time(aggregate_linear, updates, d))
            series["baseline"].append(_time(aggregate_baseline, updates, d))
            series["advanced"].append(_time(aggregate_advanced, updates, d))
            accesses = 2 * N_CLIENTS * k + d
            if d <= ORAM_MAX_D:
                elapsed = _time(aggregate_path_oram, updates, d, seed=0)
                oram_per_access = elapsed / accesses
                series["path_oram"].append(elapsed)
                series["oram_extrapolated"].append(False)
            else:
                series["path_oram"].append(oram_per_access * accesses)
                series["oram_extrapolated"].append(True)
        return series

    series = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for i, d in enumerate(series["d"]):
        oram = f"{series['path_oram'][i]:.4g}"
        if series["oram_extrapolated"][i]:
            oram += " (extrap.)"
        rows.append([
            d, f"{series['linear'][i]:.4g}", f"{series['baseline'][i]:.4g}",
            f"{series['advanced'][i]:.4g}", oram,
        ])
    print_table(
        f"Figure 10: aggregation seconds (alpha={ALPHA}, n={N_CLIENTS})",
        ["d", "linear", "baseline", "advanced", "path_oram"], rows,
    )
    save_results("fig10", series)
    benchmark.extra_info.update(
        {k: series[k] for k in ("d", "baseline", "advanced", "path_oram")}
    )

    # Shape checks.
    last = len(D_SWEEP) - 1
    # Advanced beats Baseline at the largest model, clearly.
    assert series["advanced"][last] < series["baseline"][last] / 2
    # PathORAM is the slowest oblivious scheme at scale.
    assert series["path_oram"][last] > series["advanced"][last]
    # Linear (non-oblivious) lower-bounds everything.
    assert series["linear"][last] < series["advanced"][last]
    # Advanced's relative advantage grows with d.
    ratio_small = series["advanced"][0] / max(series["baseline"][0], 1e-9)
    ratio_large = series["advanced"][last] / max(series["baseline"][last], 1e-9)
    assert ratio_large < ratio_small
