"""Ablation: sorting-network choice and ORAM position-map storage.

Two design decisions the paper discusses:

* Section 5.2 chooses Batcher's bitonic network over asymptotically
  better alternatives ("AKS ... has a huge constant").  We compare the
  two practical Batcher networks -- bitonic vs odd-even mergesort --
  in comparator count and vectorized wall time.
* Figure 10's Path ORAM comparator cites "oblivious reading of the
  position maps" as a main cost.  We quantify it: flat Path ORAM
  (enclave-private map) vs the Zerotrace-style recursive construction
  whose map lives in a second ORAM.
"""

import time

import numpy as np

from repro.oblivious.sort import (
    bitonic_sort_numpy,
    comparator_count,
    odd_even_merge_network,
)
from repro.oram.path_oram import PathORAM
from repro.oram.recursive import RecursivePathORAM

from .common import print_table, save_results

SIZES = (64, 256, 1024, 4096)


def test_ablation_sorting_networks(benchmark):
    def experiment():
        series = []
        for n in SIZES:
            bitonic = comparator_count(n)
            odd_even = sum(1 for _ in odd_even_merge_network(n))
            keys = np.random.default_rng(0).integers(0, 1 << 30, size=n,
                                                     dtype=np.int64)
            start = time.perf_counter()
            bitonic_sort_numpy(keys.copy())
            bitonic_time = time.perf_counter() - start
            series.append({
                "n": n,
                "bitonic_comparators": bitonic,
                "odd_even_comparators": odd_even,
                "saving": 1.0 - odd_even / bitonic,
                "bitonic_seconds": bitonic_time,
            })
        return series

    series = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [r["n"], r["bitonic_comparators"], r["odd_even_comparators"],
         f"{r['saving']:.0%}"]
        for r in series
    ]
    print_table(
        "Ablation: sorting networks (comparator counts)",
        ["n", "bitonic", "odd-even merge", "odd-even saving"], rows,
    )
    save_results("ablation_networks", {"series": series})
    benchmark.extra_info["series"] = series

    for r in series:
        assert r["odd_even_comparators"] < r["bitonic_comparators"]
    # The saving approaches ~1/3 at scale but never flips the
    # asymptotics: both are Theta(n log^2 n).
    assert 0.1 < series[-1]["saving"] < 0.5


def test_ablation_recursive_position_map(benchmark):
    def experiment():
        capacity = 512
        ops = 120
        rng = np.random.default_rng(0)
        blocks = rng.integers(0, capacity, size=ops)

        flat = PathORAM(capacity, stash_limit=80, seed=0)
        start = time.perf_counter()
        for b in blocks:
            flat.write(int(b), 1.0)
        flat_time = (time.perf_counter() - start) / ops

        recursive = RecursivePathORAM(capacity, stash_limit=80,
                                      base_map_limit=16, seed=0)
        start = time.perf_counter()
        for b in blocks:
            recursive.write(int(b), 1.0)
        recursive_time = (time.perf_counter() - start) / ops
        return {
            "flat_per_access": flat_time,
            "recursive_per_access": recursive_time,
            "overhead": recursive_time / flat_time,
        }

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Ablation: Path ORAM position-map storage (seconds per access)",
        ["variant", "per access", "overhead"],
        [
            ["flat (private map)", f"{result['flat_per_access']:.3g}", "1.0x"],
            ["recursive (ORAM map)", f"{result['recursive_per_access']:.3g}",
             f"{result['overhead']:.1f}x"],
        ],
    )
    save_results("ablation_recursive_oram", result)
    benchmark.extra_info.update(result)

    # The oblivious position map costs a real constant factor -- the
    # paper's "main factor" in Path ORAM's Figure 10 cost.
    assert result["overhead"] > 1.3
