"""Figure 4: attack success with a FIXED number of labels per client.

For each dataset and attack method (JAC / NN / NN-single), sweep the
number of labels each client holds and report the ``all`` (exact set)
and ``top-1`` success rates.  Paper shape: near-1.0 at 1-2 labels,
``all`` decays with more labels, ``top-1`` stays high.

Scale: N=40 clients / q=0.5 / T=3 instead of the paper's N=1000 /
q=0.1 / T=3 (same expected participants per round ~ 20 vs 100); the
MNIST-like and Purchase100-like datasets use the exact paper model
architectures.
"""

import pytest

from repro.attack.pipeline import AttackConfig, chance_top1, run_attack

from .common import print_table, run_traced_fl, save_results

LABEL_COUNTS = (1, 2, 3)
METHODS = ("jac", "nn", "nn_single")
DATASETS = ("tiny", "mnist", "purchase100")


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig4_attack_fixed_labels(benchmark, dataset):
    def experiment():
        series = {m: {"all": [], "top1": [], "chance": []} for m in METHODS}
        for n_labels in LABEL_COUNTS:
            system, model, logs, test_data, training, true_labels = (
                run_traced_fl(dataset, n_labels, fixed=True)
            )
            chance = chance_top1(true_labels, len(test_data))
            for method in METHODS:
                res = run_attack(
                    logs, model, test_data, training, true_labels, system.d,
                    AttackConfig(method=method, known_label_count=n_labels,
                                 nn_epochs=25, nn_hidden=32,
                                 teacher_samples_per_label=5),
                )
                series[method]["all"].append(res.all_accuracy)
                series[method]["top1"].append(res.top1_accuracy)
                series[method]["chance"].append(chance)
        return series

    series = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for method in METHODS:
        for i, n_labels in enumerate(LABEL_COUNTS):
            rows.append([
                method, n_labels,
                series[method]["all"][i], series[method]["top1"][i],
                series[method]["chance"][i],
            ])
    print_table(
        f"Figure 4 ({dataset}): fixed #labels",
        ["method", "#labels", "all", "top-1", "chance top-1"], rows,
    )
    save_results(f"fig4_{dataset}", series)
    benchmark.extra_info.update(
        {m: series[m]["top1"] for m in METHODS}
    )

    # Shape checks (paper: high success at few labels, top-1 stays high).
    jac = series["jac"]
    assert jac["all"][0] > 0.6, "1-label exact-set attack should succeed"
    for i in range(len(LABEL_COUNTS)):
        # Decisively above chance (capped: chance can approach 1 when
        # clients hold half the label space, as with tiny at 3/6).
        assert jac["top1"][i] >= min(0.9, 2.5 * jac["chance"][i])
    # `all` is non-increasing-ish with label count (allow small noise).
    assert jac["all"][-1] <= jac["all"][0] + 0.1
