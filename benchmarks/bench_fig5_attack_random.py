"""Figure 5: attack success with a RANDOM number of labels per client.

The harder setting of Section 4.2: each client holds between 1 and
``max_labels`` labels, the attacker does not know the count, and the
decision stage falls back to 1-D 2-means clustering of the scores.
Paper shape: still effective at small maxima; exact-set accuracy decays
faster than in the fixed setting, top-1 stays well above chance.
"""

import pytest

from repro.attack.pipeline import AttackConfig, chance_top1, run_attack

from .common import print_table, run_traced_fl, save_results

MAX_LABELS = (2, 3)
METHODS = ("jac", "nn")
DATASETS = ("tiny", "mnist")


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig5_attack_random_labels(benchmark, dataset):
    def experiment():
        series = {m: {"all": [], "top1": [], "chance": []} for m in METHODS}
        for max_labels in MAX_LABELS:
            system, model, logs, test_data, training, true_labels = (
                run_traced_fl(dataset, max_labels, fixed=False, seed=1)
            )
            chance = chance_top1(true_labels, len(test_data))
            for method in METHODS:
                res = run_attack(
                    logs, model, test_data, training, true_labels, system.d,
                    AttackConfig(method=method, known_label_count=None,
                                 nn_epochs=15, nn_hidden=32),
                )
                series[method]["all"].append(res.all_accuracy)
                series[method]["top1"].append(res.top1_accuracy)
                series[method]["chance"].append(chance)
        return series

    series = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        [method, max_labels,
         series[method]["all"][i], series[method]["top1"][i],
         series[method]["chance"][i]]
        for method in METHODS
        for i, max_labels in enumerate(MAX_LABELS)
    ]
    print_table(
        f"Figure 5 ({dataset}): random #labels (k-means decision)",
        ["method", "max labels", "all", "top-1", "chance top-1"], rows,
    )
    save_results(f"fig5_{dataset}", series)
    benchmark.extra_info.update({m: series[m]["top1"] for m in METHODS})

    # Even without knowing the label count, top-1 beats chance clearly.
    jac = series["jac"]
    for i in range(len(MAX_LABELS)):
        assert jac["top1"][i] > 1.5 * jac["chance"][i]
