"""Audit-subsystem benchmark: commit + verify overhead per round.

Measures what verifiable rounds cost on a mega-cohort round: the whole
cohort's sealed uploads are produced once through the vectorized
client path and aggregated through the sharded service (the *round*
under audit), then the audit layer runs over exactly that round's
evidence --

* **commit**: Merkle root over all sealed ciphertexts + aggregate /
  partial digests + the chained log append (what
  :meth:`repro.audit.AuditRecorder.record_round` adds to a live round);
* **verify**: chain + commitment re-verification of the written log
  (what ``python -m repro audit --no-replay`` costs an auditor);
* **prove**: one per-upload inclusion proof, generated and checked.

The headline metric, ``audit_overhead_frac``, is
``(commit_s + verify_s) / round_s`` at 10^4 uploads -- the fraction a
round slows down when every round is committed and re-checked.  The CI
regression gate enforces the ``max_audit_overhead_frac`` ceiling from
``bench_results/baseline.json``.

Set ``AUDIT_BENCH_QUICK=1`` for the reduced CI workload.
"""

import os
import tempfile
import time
from pathlib import Path

from repro.audit import AuditRecorder, make_manifest, verify_log
from repro.audit.verify import generate_proof, verify_proof_payload
from repro.fl.client import TrainingConfig
from repro.fl.datasets import SPECS, SyntheticClassData, partition_clients
from repro.fl.models import build_model
from repro.runtime import (
    CohortRuntime,
    RuntimeConfig,
    ShardConfig,
    ShardedAggregator,
)
from repro.sgx import crypto
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import Enclave

from .common import print_table, save_results

QUICK = bool(os.environ.get("AUDIT_BENCH_QUICK"))

N_CLIENTS = 2000 if QUICK else 10_000
SAMPLES_PER_CLIENT = 16
SHARDS = 4
TRAIN = TrainingConfig(local_epochs=1, local_lr=0.2, batch_size=8,
                       sparse_ratio=0.1, clip=1.0, sparsifier="top_k")


def _round_under_audit():
    """One mega-cohort round; returns its evidence plus wall time."""
    gen = SyntheticClassData(SPECS["tiny"], seed=0)
    clients = partition_clients(gen, N_CLIENTS, SAMPLES_PER_CLIENT, 2,
                                seed=0)
    model = build_model("tiny_mlp", seed=0)
    keys = {c.client_id: crypto.generate_key(b"k%d" % c.client_id)
            for c in clients}

    t0 = time.perf_counter()
    runtime = CohortRuntime(RuntimeConfig(executor="vectorized"), model,
                            clients, entropy=11, keys=keys)
    with runtime:
        result = runtime.run_cohort(0, [c.client_id for c in clients],
                                    model.get_flat(), TRAIN)
    service = AttestationService(signing_key=b"s" * 32,
                                 platform_secret=b"p" * 32)
    root = Enclave(attestation_service=service, seed=0)
    for cid, key in keys.items():
        root.keystore.put(cid, key)
    root.begin_round(sampled=keys.keys())
    aggregator = ShardedAggregator(
        root, ShardConfig(shards=SHARDS, oblivious_batch=64), entropy=11)
    report = aggregator.aggregate_round(0, result.deliveries,
                                        model.num_params,
                                        sampled=set(keys.keys()))
    round_s = time.perf_counter() - t0
    return result, report, round_s


def test_audit_overhead():
    result, report, round_s = _round_under_audit()
    accepted = sorted(report.accepted_clients)
    ciphertexts = result.ciphertext_bytes(accepted)
    upload_bytes = sum(len(b) for b in ciphertexts.values())

    manifest = make_manifest(
        data={"spec": "tiny", "seed": 0, "n_clients": N_CLIENTS,
              "samples_per_client": SAMPLES_PER_CLIENT,
              "labels_per_client": 2, "partition_seed": 0},
        model={"name": "tiny_mlp", "seed": 0},
        config=_bench_config(),
    )

    with tempfile.TemporaryDirectory() as tmp:
        log_path = Path(tmp) / "audit.jsonl"

        # -- commit: what record_round adds to the live round ----------
        t0 = time.perf_counter()
        with AuditRecorder(log_path, manifest) as recorder:
            recorder.record_round(
                0, accepted=accepted, ciphertexts=ciphertexts,
                weights_after=report.aggregate, epsilon=0.5, clip=1.0,
                partials=report.sealed_partials, degraded=report.degraded,
                n_shards=report.n_shards)
        commit_s = time.perf_counter() - t0

        # -- verify: chain + commitments (the auditor's fast path) -----
        t0 = time.perf_counter()
        audit_report = verify_log(log_path, replay=False, strict=True)
        verify_s = time.perf_counter() - t0
        assert audit_report.n_uploads == len(accepted)
        assert all(v.merkle_ok for v in audit_report.rounds)

        # -- prove: one upload's inclusion proof, generated + checked --
        t0 = time.perf_counter()
        proof = generate_proof(log_path, 0, accepted[len(accepted) // 2])
        verify_proof_payload(log_path, proof)
        proof_s = time.perf_counter() - t0
        log_bytes = log_path.stat().st_size

    audit_overhead_frac = (commit_s + verify_s) / round_s

    print_table(
        f"Audit overhead: {len(accepted)} committed uploads "
        f"({upload_bytes / 1e6:.1f} MB), {SHARDS} shards",
        ["phase", "seconds", "vs round"],
        [
            ["round (train+aggregate)", f"{round_s:.3f}", "1.000x"],
            ["commit (merkle+chain)", f"{commit_s:.3f}",
             f"{commit_s / round_s:.3f}x"],
            ["verify (chain+merkle)", f"{verify_s:.3f}",
             f"{verify_s / round_s:.3f}x"],
            ["inclusion proof", f"{proof_s:.4f}",
             f"{proof_s / round_s:.4f}x"],
        ],
    )

    save_results("audit", {
        "workload": {
            "n_clients": N_CLIENTS,
            "uploads": len(accepted),
            "upload_bytes": upload_bytes,
            "log_bytes": log_bytes,
            "shards": SHARDS,
            "quick": QUICK,
        },
        "round_s": round_s,
        "commit_s": commit_s,
        "verify_s": verify_s,
        "proof_s": proof_s,
        "proof_path_len": len(proof["path"]),
        "audit_overhead_frac": audit_overhead_frac,
    })

    # Committing and re-verifying every round must stay a small
    # fraction of the round itself (the baseline ceiling enforces the
    # exact bound in CI).
    assert audit_overhead_frac < 1.0, (
        f"audit costs more than the round it audits "
        f"({audit_overhead_frac:.2f}x)")


def _bench_config():
    from repro.core.olive import OliveConfig

    return OliveConfig(sample_rate=0.5, noise_multiplier=1.12,
                       aggregator="advanced", training=TRAIN)
