"""Benchmark-regression gate for CI.

Compares the ``wall_seconds`` each quick-mode benchmark recorded under
``bench_results/<name>.json`` against the committed reference in
``bench_results/baseline.json`` and fails (exit 1) when any bench
slowed down past the tolerance band: worse than 1.5x the baseline
(default) *and* past a small absolute grace (default 1 s), so
sub-second benches are not gated on scheduler jitter.

The committed baseline stores, per bench, the wall seconds measured on
the reference runner plus a free-form note.  Speed-ups and small
regressions inside the band pass; the full comparison is always
written to ``bench_results/regression_report.json`` so CI can upload
it as an artifact whether the gate passes or not.

Usage::

    python benchmarks/check_regression.py [--tolerance 1.5]
        [--baseline bench_results/baseline.json]
        [--results bench_results] [--report <path>]

Besides wall clock, any ``min_`` floor recorded in the baseline is
enforced on the matching key of the bench's payload (e.g.
``min_replay_speedup`` gates ``replay_speedup`` in ``fig11.json``),
letting the gate also catch *model-level* perf regressions that wall
clock alone would hide behind runner noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_TOLERANCE = 1.5
DEFAULT_GRACE_SECONDS = 1.0
RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"


def compare(
    baseline: dict, results_dir: Path, tolerance: float,
    grace: float = DEFAULT_GRACE_SECONDS,
) -> tuple[list[dict], bool]:
    """Return (per-bench comparison rows, ok flag)."""
    rows = []
    ok = True
    for name, ref in sorted(baseline.get("benches", {}).items()):
        row = {"bench": name, "baseline_seconds": ref["wall_seconds"]}
        path = results_dir / f"{name}.json"
        if not path.exists():
            row.update(status="missing", detail=f"{path} not found")
            ok = False
            rows.append(row)
            continue
        payload = json.loads(path.read_text())
        current = payload.get("wall_seconds")
        if current is None:
            row.update(status="missing", detail="no wall_seconds recorded")
            ok = False
            rows.append(row)
            continue
        ratio = current / ref["wall_seconds"]
        row.update(current_seconds=current, ratio=round(ratio, 3))
        failures = []
        if ratio > tolerance and current > ref["wall_seconds"] + grace:
            failures.append(
                f"wall {current:.2f}s is {ratio:.2f}x baseline "
                f"{ref['wall_seconds']:.2f}s (tolerance {tolerance}x)"
            )
        for key, floor in ref.items():
            if not key.startswith("min_"):
                continue
            metric = key[len("min_"):]
            value = payload.get(metric)
            row[metric] = value
            if value is None:
                failures.append(f"metric {metric!r} missing from payload")
            elif value < floor:
                failures.append(f"{metric} {value} below floor {floor}")
        if failures:
            row.update(status="fail", detail="; ".join(failures))
            ok = False
        else:
            row.update(status="ok")
        rows.append(row)
    return rows, ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=RESULTS_DIR / "baseline.json"
    )
    parser.add_argument("--results", type=Path, default=RESULTS_DIR)
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="slowdown factor that fails the gate "
             f"(default: baseline's, else {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--grace", type=float, default=None,
        help="absolute seconds a bench may exceed baseline before the "
             "ratio gate applies (default: baseline's, else "
             f"{DEFAULT_GRACE_SECONDS})",
    )
    parser.add_argument(
        "--report", type=Path,
        default=RESULTS_DIR / "regression_report.json",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    tolerance = args.tolerance
    if tolerance is None:
        tolerance = baseline.get("tolerance", DEFAULT_TOLERANCE)
    grace = args.grace
    if grace is None:
        grace = baseline.get("grace_seconds", DEFAULT_GRACE_SECONDS)
    rows, ok = compare(baseline, args.results, tolerance, grace)

    report = {
        "baseline": str(args.baseline),
        "tolerance": tolerance,
        "grace_seconds": grace,
        "ok": ok,
        "benches": rows,
    }
    args.report.parent.mkdir(exist_ok=True)
    args.report.write_text(json.dumps(report, indent=2) + "\n")

    width = max((len(r["bench"]) for r in rows), default=5)
    for row in rows:
        line = f"{row['bench']:<{width}}  {row['status']:>7}"
        if "ratio" in row:
            line += (
                f"  {row['current_seconds']:8.2f}s vs"
                f" {row['baseline_seconds']:8.2f}s  ({row['ratio']:.2f}x)"
            )
        if row.get("detail"):
            line += f"  -- {row['detail']}"
        print(line)
    print(f"regression gate: {'PASS' if ok else 'FAIL'}"
          f" (tolerance {tolerance}x, report: {args.report})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
