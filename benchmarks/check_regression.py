"""Benchmark-regression gate for CI.

Compares the ``wall_seconds`` each quick-mode benchmark recorded under
``bench_results/<name>.json`` against the committed reference in
``bench_results/baseline.json`` and fails (exit 1) when any bench
slowed down past the tolerance band: worse than 1.5x the baseline
(default) *and* past a small absolute grace (default 1 s), so
sub-second benches are not gated on scheduler jitter.

The committed baseline stores, per bench, the wall seconds measured on
the reference runner plus a free-form note.  Speed-ups and small
regressions inside the band pass; the full comparison is always
written to ``bench_results/regression_report.json`` so CI can upload
it as an artifact whether the gate passes or not.

Usage::

    python benchmarks/check_regression.py [--tolerance 1.5]
        [--baseline bench_results/baseline.json]
        [--results bench_results] [--report <path>]

Besides wall clock, any ``min_`` floor recorded in the baseline is
enforced on the matching key of the bench's payload (e.g.
``min_replay_speedup`` gates ``replay_speedup`` in ``fig11.json``),
letting the gate also catch *model-level* perf regressions that wall
clock alone would hide behind runner noise.  ``max_`` ceilings work
symmetrically (e.g. ``max_audit_overhead_frac`` gates the audit
subsystem's per-round commitment overhead in ``audit.json``).

Two telemetry-aware extensions ride on the flight-recorder layer:

* a bench entry may carry an ``"obs"`` block of histogram ceilings,
  e.g. ``{"ecall.wall_s": {"max_p95": 0.05}}`` -- enforced against the
  last ``hist`` snapshot in the bench's archived
  ``<name>_telemetry.json`` stream (recorded under ``BENCH_TELEMETRY=1``),
  so a latency-distribution regression in one phase fails the gate even
  when total wall clock hides it;
* ``--diff BASE CURRENT`` compares two telemetry archives through
  :mod:`repro.obs.diffing` and reports per-span-path and per-histogram
  deltas -- *which phase* regressed, not just that something did.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_TOLERANCE = 1.5
DEFAULT_GRACE_SECONDS = 1.0
RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"


def read_hist_snapshots(path: Path) -> dict[str, dict]:
    """Last ``hist`` snapshot per name from a telemetry JSONL archive.

    Parsed inline (no repro import -- CI runs this script without the
    package on ``sys.path``); torn final lines are tolerated.
    """
    hists: dict[str, dict] = {}
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(event, dict) and event.get("type") == "hist":
            hists[event["name"]] = event
    return hists


def check_obs_ceilings(
    name: str, ceilings: dict, results_dir: Path
) -> list[str]:
    """Failures from one bench's telemetry-histogram ceilings."""
    tele_path = results_dir / f"{name}_telemetry.json"
    if not tele_path.exists():
        return [f"obs ceilings set but {tele_path.name} missing "
                f"(bench not run with BENCH_TELEMETRY=1?)"]
    hists = read_hist_snapshots(tele_path)
    failures = []
    for hist_name, limits in sorted(ceilings.items()):
        snapshot = hists.get(hist_name)
        if snapshot is None:
            failures.append(f"histogram {hist_name!r} missing from "
                            f"{tele_path.name}")
            continue
        for key, ceiling in sorted(limits.items()):
            if not key.startswith("max_"):
                continue
            field = key[len("max_"):]
            value = snapshot.get(field)
            if value is None:
                failures.append(
                    f"{hist_name} field {field!r} missing from snapshot")
            elif float(value) > float(ceiling):
                failures.append(
                    f"{hist_name} {field} {float(value):.6f}s above "
                    f"ceiling {float(ceiling):.6f}s")
    return failures


def compare(
    baseline: dict, results_dir: Path, tolerance: float,
    grace: float = DEFAULT_GRACE_SECONDS,
) -> tuple[list[dict], bool]:
    """Return (per-bench comparison rows, ok flag)."""
    rows = []
    ok = True
    for name, ref in sorted(baseline.get("benches", {}).items()):
        row = {"bench": name, "baseline_seconds": ref["wall_seconds"]}
        path = results_dir / f"{name}.json"
        if not path.exists():
            row.update(status="missing", detail=f"{path} not found")
            ok = False
            rows.append(row)
            continue
        payload = json.loads(path.read_text())
        current = payload.get("wall_seconds")
        if current is None:
            row.update(status="missing", detail="no wall_seconds recorded")
            ok = False
            rows.append(row)
            continue
        ratio = current / ref["wall_seconds"]
        row.update(current_seconds=current, ratio=round(ratio, 3))
        failures = []
        if ratio > tolerance and current > ref["wall_seconds"] + grace:
            failures.append(
                f"wall {current:.2f}s is {ratio:.2f}x baseline "
                f"{ref['wall_seconds']:.2f}s (tolerance {tolerance}x)"
            )
        for key, floor in ref.items():
            if not key.startswith("min_"):
                continue
            metric = key[len("min_"):]
            value = payload.get(metric)
            row[metric] = value
            if value is None:
                failures.append(f"metric {metric!r} missing from payload")
            elif value < floor:
                failures.append(f"{metric} {value} below floor {floor}")
        for key, ceiling in ref.items():
            if not key.startswith("max_"):
                continue
            metric = key[len("max_"):]
            value = payload.get(metric)
            row[metric] = value
            if value is None:
                failures.append(f"metric {metric!r} missing from payload")
            elif value > ceiling:
                failures.append(
                    f"{metric} {value} above ceiling {ceiling}")
        obs_ceilings = ref.get("obs")
        if obs_ceilings:
            failures.extend(
                check_obs_ceilings(name, obs_ceilings, results_dir))
        if failures:
            row.update(status="fail", detail="; ".join(failures))
            ok = False
        else:
            row.update(status="ok")
        rows.append(row)
    return rows, ok


def report_gated_metrics(baseline_path: Path, results_dir: Path) -> None:
    """Informational floor/ceiling table for ``--diff`` mode.

    Prints every ``min_``/``max_`` bound the baseline declares next to
    the current payload value (when the bench's results exist), so a
    telemetry diff also shows where the gated model-level metrics stand
    -- without failing on them (the baseline gate owns that).
    """
    if not baseline_path.exists():
        return
    baseline = json.loads(baseline_path.read_text())
    rows = []
    for name, ref in sorted(baseline.get("benches", {}).items()):
        bounds = [(k, v) for k, v in ref.items()
                  if k.startswith(("min_", "max_"))]
        if not bounds:
            continue
        path = results_dir / f"{name}.json"
        payload = json.loads(path.read_text()) if path.exists() else {}
        for key, bound in bounds:
            kind, metric = key.split("_", 1)
            value = payload.get(metric)
            if value is None:
                status = "n/a"
            elif kind == "min":
                status = "ok" if value >= bound else "OUT"
            else:
                status = "ok" if value <= bound else "OUT"
            shown = f"{value:.4g}" if isinstance(value, (int, float)) \
                else "-"
            rows.append((name, metric, f"{kind} {bound:g}", shown, status))
    if not rows:
        return
    print("\ngated metrics (informational; enforced by the baseline gate):")
    widths = [max(len(r[i]) for r in rows) for i in range(5)]
    for row in rows:
        print("  " + "  ".join(v.ljust(w) for v, w in zip(row, widths)))


def run_diff(base: Path, cur: Path, tolerance: float, grace: float,
             baseline_path: Path | None = None,
             results_dir: Path | None = None) -> int:
    """Compare two telemetry archives phase-by-phase; 1 on regression."""
    try:
        from repro.obs import diffing
    except ImportError:
        sys.path.insert(
            0, str(Path(__file__).resolve().parent.parent / "src"))
        from repro.obs import diffing

    path_deltas, hist_deltas = diffing.diff_runs(base, cur)
    print(diffing.render_diff(path_deltas, hist_deltas,
                              tolerance=tolerance, grace_s=grace))
    if baseline_path is not None and results_dir is not None:
        report_gated_metrics(baseline_path, results_dir)
    bad = (diffing.regressed_paths(path_deltas, tolerance, grace)
           + diffing.regressed_hists(hist_deltas, tolerance, grace))
    if bad:
        print(f"telemetry diff: FAIL ({len(bad)} regressed row(s), "
              f"tolerance {tolerance}x, grace {grace}s)")
        return 1
    print(f"telemetry diff: PASS (tolerance {tolerance}x, grace {grace}s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=RESULTS_DIR / "baseline.json"
    )
    parser.add_argument(
        "--diff", nargs=2, type=Path, metavar=("BASE", "CURRENT"),
        default=None,
        help="compare two telemetry JSONL archives per span path and "
             "histogram instead of running the baseline gate",
    )
    parser.add_argument("--results", type=Path, default=RESULTS_DIR)
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="slowdown factor that fails the gate "
             f"(default: baseline's, else {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--grace", type=float, default=None,
        help="absolute seconds a bench may exceed baseline before the "
             "ratio gate applies (default: baseline's, else "
             f"{DEFAULT_GRACE_SECONDS})",
    )
    parser.add_argument(
        "--report", type=Path,
        default=RESULTS_DIR / "regression_report.json",
    )
    args = parser.parse_args(argv)

    if args.diff is not None:
        return run_diff(args.diff[0], args.diff[1],
                        args.tolerance or DEFAULT_TOLERANCE,
                        args.grace if args.grace is not None else 0.05,
                        baseline_path=args.baseline,
                        results_dir=args.results)

    baseline = json.loads(args.baseline.read_text())
    tolerance = args.tolerance
    if tolerance is None:
        tolerance = baseline.get("tolerance", DEFAULT_TOLERANCE)
    grace = args.grace
    if grace is None:
        grace = baseline.get("grace_seconds", DEFAULT_GRACE_SECONDS)
    rows, ok = compare(baseline, args.results, tolerance, grace)

    report = {
        "baseline": str(args.baseline),
        "tolerance": tolerance,
        "grace_seconds": grace,
        "ok": ok,
        "benches": rows,
    }
    args.report.parent.mkdir(exist_ok=True)
    args.report.write_text(json.dumps(report, indent=2) + "\n")

    width = max((len(r["bench"]) for r in rows), default=5)
    for row in rows:
        line = f"{row['bench']:<{width}}  {row['status']:>7}"
        if "ratio" in row:
            line += (
                f"  {row['current_seconds']:8.2f}s vs"
                f" {row['baseline_seconds']:8.2f}s  ({row['ratio']:.2f}x)"
            )
        if row.get("detail"):
            line += f"  -- {row['detail']}"
        print(line)
    print(f"regression gate: {'PASS' if ok else 'FAIL'}"
          f" (tolerance {tolerance}x, report: {args.report})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
