"""Sharded multi-enclave aggregation benchmark: scaling + fault sweep.

Measures the hierarchical aggregation service
(:mod:`repro.runtime.shards`) on a mega-cohort round: the whole
cohort's sealed uploads are produced once through the vectorized
client path, then aggregated repeatedly while sweeping

* **shard count** -- round latency vs number of leaf enclaves at
  n >= 10^5 uploads (full mode; quick mode shrinks the cohort).  The
  reported ``latency_s`` is the simulated parallel-leaf latency (max
  over shards + root combine): the quantity that shrinks as the shard
  count grows, while coordinator wall clock stays flat (the simulation
  executes leaves serially);
* **leaf-crash probability** -- completion rate and latency under the
  server-side fault model, with generous retry/failover budgets.  At
  every crash rate where all shards complete, the aggregate is
  asserted **bit-identical** to the fault-free sharded run -- recovery
  that changed a byte would be a bug, not a degraded round.

Set ``SHARDS_BENCH_QUICK=1`` for the reduced CI workload; the
regression gate additionally enforces the recorded
``shard_completion_rate`` floor from ``bench_results/baseline.json``.
"""

import os
import time

from repro.fl.client import TrainingConfig
from repro.fl.datasets import SPECS, SyntheticClassData, partition_clients
from repro.fl.models import build_model
from repro.runtime import (
    CohortRuntime,
    EnclaveFaultConfig,
    RuntimeConfig,
    ShardConfig,
    ShardedAggregator,
    plan_shards,
)
from repro.sgx import crypto
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import Enclave

from .common import print_table, save_results

QUICK = bool(os.environ.get("SHARDS_BENCH_QUICK"))

SAMPLES_PER_CLIENT = 16
TRAIN = TrainingConfig(local_epochs=1, local_lr=0.2, batch_size=8,
                       sparse_ratio=0.1, clip=1.0, sparsifier="top_k")

QUICK_CLIENTS = 2000
FULL_CLIENTS = 100_000
SHARD_SWEEP_QUICK = (1, 4)
SHARD_SWEEP_FULL = (1, 2, 4, 8, 16)
CRASH_SWEEP_QUICK = (0.0, 0.2)
CRASH_SWEEP_FULL = (0.0, 0.1, 0.2, 0.4)
#: The chaos configuration the acceptance bar runs: leaf crashes plus
#: straggler leaves, recovered within generous retry/failover budgets.
#: Entropy 9 is a seed whose (round 0, shards 0-7) fault plans include
#: crashes and a fatal failover at crash rate 0.2, so the sweep
#: exercises real recovery (plans depend only on (entropy, round,
#: shard, attempt), never on cohort size).
CHAOS_RETRIES = 8
CHAOS_SHARDS = 8
CHAOS_ENTROPY = 9


def _client_phase(n_clients):
    """One vectorized client round: returns (deliveries, keys, d)."""
    gen = SyntheticClassData(SPECS["tiny"], seed=0)
    clients = partition_clients(gen, n_clients, SAMPLES_PER_CLIENT, 2,
                                seed=0)
    model = build_model("tiny_mlp", seed=0)
    keys = {c.client_id: crypto.generate_key(b"k%d" % c.client_id)
            for c in clients}
    runtime = CohortRuntime(RuntimeConfig(executor="vectorized"), model,
                            clients, entropy=11, keys=keys)
    with runtime:
        result = runtime.run_cohort(0, [c.client_id for c in clients],
                                    model.get_flat(), TRAIN)
    return result.deliveries, keys, model.num_params


def _fresh_service(keys, config, entropy=11):
    """A root enclave (keys provisioned) plus a fresh shard service."""
    service = AttestationService(signing_key=b"s" * 32,
                                 platform_secret=b"p" * 32)
    root = Enclave(attestation_service=service, seed=0)
    for cid, key in keys.items():
        root.keystore.put(cid, key)
    root.begin_round(sampled=keys.keys())
    return ShardedAggregator(root, config, entropy=entropy)


def _aggregate(deliveries, keys, d, config, entropy=11):
    svc = _fresh_service(keys, config, entropy=entropy)
    t0 = time.perf_counter()
    report = svc.aggregate_round(0, deliveries, d,
                                 sampled=set(keys.keys()))
    wall = time.perf_counter() - t0
    return report, wall


def test_shard_scaling_and_faults():
    n_clients = QUICK_CLIENTS if QUICK else FULL_CLIENTS
    shard_sweep = SHARD_SWEEP_QUICK if QUICK else SHARD_SWEEP_FULL
    crash_sweep = CRASH_SWEEP_QUICK if QUICK else CRASH_SWEEP_FULL

    t0 = time.perf_counter()
    deliveries, keys, d = _client_phase(n_clients)
    client_wall = time.perf_counter() - t0
    upload_bytes = max(len(dv.ciphertext.to_bytes()) for dv in deliveries)
    auto = plan_shards(len(deliveries), d, upload_bytes, ShardConfig())

    # -- shard-count sweep (fault-free) --------------------------------
    scaling = []
    for shards in shard_sweep:
        report, wall = _aggregate(
            deliveries, keys, d,
            ShardConfig(shards=shards, oblivious_batch=64))
        assert report.completion_rate == 1.0
        assert len(report.accepted_clients) == len(deliveries)
        scaling.append({
            "shards": shards,
            "latency_s": report.latency_s,
            "wall_s": wall,
            "accepted": len(report.accepted_clients),
        })
    print_table(
        f"Sharded aggregation scaling: {len(deliveries)} uploads, "
        f"d={d}, EPC-aware auto plan = {auto} shard(s)",
        ["shards", "latency s", "coordinator wall s", "accepted"],
        [[r["shards"], f"{r['latency_s']:.3f}", f"{r['wall_s']:.3f}",
          r["accepted"]] for r in scaling],
    )

    # -- fault sweep: crash probability vs completion/latency ----------
    baseline_report, _ = _aggregate(
        deliveries, keys, d,
        ShardConfig(shards=CHAOS_SHARDS, oblivious_batch=64,
                    max_shard_retries=CHAOS_RETRIES),
        entropy=CHAOS_ENTROPY)
    fault_rows = []
    completion_at_probe = None
    probe_crashes = 0
    for crash in crash_sweep:
        cfg = ShardConfig(
            shards=CHAOS_SHARDS, oblivious_batch=64,
            max_shard_retries=CHAOS_RETRIES,
            faults=EnclaveFaultConfig(
                leaf_crash_rate=crash, crash_fatal_rate=0.5,
                leaf_straggler_rate=min(1.0, crash),
            ),
        )
        report, wall = _aggregate(deliveries, keys, d, cfg,
                                  entropy=CHAOS_ENTROPY)
        crashes = sum(o.crashes for o in report.outcomes)
        failovers = sum(o.failovers for o in report.outcomes)
        if report.completion_rate == 1.0:
            # Recovery must be invisible in the output bits.
            assert (report.aggregate.tobytes()
                    == baseline_report.aggregate.tobytes()), (
                f"recovered aggregate diverged at crash rate {crash}")
        if crash == 0.2:
            completion_at_probe = report.completion_rate
            probe_crashes = crashes
        fault_rows.append({
            "crash_rate": crash,
            "completion_rate": report.completion_rate,
            "latency_s": report.latency_s,
            "wall_s": wall,
            "crashes": crashes,
            "failovers": failovers,
        })
    print_table(
        f"Fault sweep: {CHAOS_SHARDS} shards, {CHAOS_RETRIES} retries, "
        "fatal rate 0.5, straggler leaves",
        ["crash rate", "completion", "latency s", "crashes", "failovers"],
        [[r["crash_rate"], f"{r['completion_rate']:.2f}",
          f"{r['latency_s']:.3f}", r["crashes"], r["failovers"]]
         for r in fault_rows],
    )

    save_results("shards", {
        "workload": {
            "n_clients": n_clients,
            "uploads": len(deliveries),
            "d": d,
            "client_phase_seconds": client_wall,
            "auto_planned_shards": auto,
            "quick": QUICK,
        },
        "scaling": scaling,
        "fault_sweep": fault_rows,
        "shard_completion_rate": completion_at_probe,
    })

    # Acceptance bar: with leaf-crash probability 0.2 plus stragglers,
    # real crashes occur and the round still completes through
    # failover/recovery (the completion floor is also enforced by the
    # CI regression gate on the saved payload).
    assert probe_crashes >= 1, "chaos probe injected no crashes"
    assert completion_at_probe == 1.0
