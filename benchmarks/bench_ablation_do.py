"""Ablation (Section 5.4): differentially oblivious vs fully oblivious.

The paper rejects DO for FL on two grounds: padding can only realize
one-sided noise (a large truncation shift per histogram bin), and the
histogram sensitivity of one client is its whole top-k set, so the
expected padding scales like d * k / epsilon elements.  This ablation
sweeps epsilon and k and reports the DO working set relative to the
fully-oblivious Advanced working set (nk + d) -- the ratio the paper
calls "prohibitive".
"""

import numpy as np

from repro.core.do_aggregation import (
    DoParameters,
    aggregate_do,
    do_padding_overhead,
)
from repro.core.aggregation import aggregate_linear

from .common import make_synthetic_updates, print_table, save_results

N, D = 100, 4096
EPSILONS = (0.5, 1.0, 2.0, 8.0)
KS = (4, 40, 400)


def test_ablation_do_padding_overhead(benchmark):
    def experiment():
        series = []
        for k in KS:
            for eps in EPSILONS:
                report = do_padding_overhead(
                    N, k, D, DoParameters(epsilon=eps, sensitivity=k)
                )
                series.append({
                    "k": k, "epsilon": eps,
                    "overhead_ratio": report["overhead_ratio"],
                    "do_elements": report["do_elements"],
                })
        # Functional sanity at one (cheap) configuration.
        updates = make_synthetic_updates(20, 4, 256, seed=0)
        agg, _ = aggregate_do(
            updates, 256, DoParameters(epsilon=8.0, sensitivity=4),
            np.random.default_rng(0),
        )
        matches = bool(np.allclose(agg, aggregate_linear(updates, 256)))
        return {"series": series, "do_matches_linear": matches}

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [r["k"], r["epsilon"], f"{r['overhead_ratio']:.1f}x",
         f"{r['do_elements']:.3g}"]
        for r in result["series"]
    ]
    print_table(
        f"Ablation 5.4: DO padding working set vs Advanced (n={N}, d={D})",
        ["k", "epsilon", "overhead vs fully-oblivious", "DO elements"], rows,
    )
    save_results("ablation_do", result)
    benchmark.extra_info.update(result)

    assert result["do_matches_linear"]
    by_key = {(r["k"], r["epsilon"]): r["overhead_ratio"]
              for r in result["series"]}
    # Overhead grows as epsilon shrinks and as k grows.
    assert by_key[(40, 0.5)] > by_key[(40, 8.0)]
    assert by_key[(400, 1.0)] > by_key[(4, 1.0)]
    # At FL-realistic sparsified sizes, DO is prohibitively padded.
    assert by_key[(400, 1.0)] > 50
