"""Ablation: the price of obliviousness at the primitive level.

Quantifies the building-block overheads that motivate the paper's
algorithm-specific design instead of generic ORAM:

* ``o_access`` / ``o_write`` (linear-scan oblivious array access, the
  ZeroTrace client-state technique) vs direct indexing -- O(n) vs O(1);
* the bitonic sorting network vs a non-oblivious comparison sort --
  the log^2 n factor Advanced pays for trace-independence;
* one Path ORAM access vs one linear-scan access at equal capacity.
"""

import time

import numpy as np

from repro.oblivious.primitives import o_access, o_write
from repro.oblivious.sort import bitonic_sort_numpy
from repro.oram.path_oram import PathORAM
from repro.sgx.memory import TracedArray

from .common import print_table, save_results

SIZES = (256, 1024, 4096)


def _time(fn, repeat=1):
    start = time.perf_counter()
    for _ in range(repeat):
        fn()
    return (time.perf_counter() - start) / repeat


def test_ablation_primitive_costs(benchmark):
    def experiment():
        series = []
        rng = np.random.default_rng(0)
        for n in SIZES:
            arr = TracedArray("a", [float(i) for i in range(n)])
            direct = _time(lambda: arr.read(n // 2), repeat=50)
            oblivious = _time(lambda: o_access(arr, n // 2), repeat=3)
            keys = rng.integers(0, 1 << 30, size=n, dtype=np.int64)
            plain_sort = _time(lambda: np.sort(keys.copy()), repeat=5)
            net_sort = _time(lambda: bitonic_sort_numpy(keys.copy()), repeat=3)
            oram = PathORAM(n, seed=0)
            oram_access = _time(lambda: oram.read(n // 2), repeat=10)
            series.append({
                "n": n,
                "direct_read": direct,
                "o_access": oblivious,
                "np_sort": plain_sort,
                "bitonic": net_sort,
                "oram_access": oram_access,
            })
        return series

    series = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [r["n"], f"{r['direct_read']:.3g}", f"{r['o_access']:.3g}",
         f"{r['np_sort']:.3g}", f"{r['bitonic']:.3g}",
         f"{r['oram_access']:.3g}"]
        for r in series
    ]
    print_table(
        "Ablation: primitive costs (seconds)",
        ["n", "direct read", "o_access scan", "np.sort", "bitonic net",
         "ORAM access"],
        rows,
    )
    save_results("ablation_primitives", {"series": series})
    benchmark.extra_info["series"] = series

    for r in series:
        # Linear-scan oblivious access costs orders of magnitude more
        # than direct access and grows with n.
        assert r["o_access"] > 10 * r["direct_read"]
        # The oblivious sort pays a real factor over np.sort.
        assert r["bitonic"] > r["np_sort"]
    # o_access scales ~linearly with n; direct read does not.
    assert series[-1]["o_access"] > 5 * series[0]["o_access"]

    # Correctness spot-checks alongside the numbers.
    arr = TracedArray("a", [0.0] * 64)
    o_write(arr, 7, 3.0)
    assert o_access(arr, 7) == 3.0
