"""Figure 12: the client-grouping optimization for Advanced (Sec. 5.3).

Sweeps the group size h and charges the grouped-Advanced address
stream to the scaled SGX cost model.  Paper shape: a U-shaped curve --
tiny groups repeat the d-dependent sort too many times, huge groups
thrash the cache/EPC, and an interior optimum h (a few hundred clients
in the paper, a few here at the scaled sizes) is several times faster
than the monolithic run.

The sweep runs on the vectorized replay engine fed by the chunked
numpy stream emitters; the sequential reference replayer is run on a
sample of the sweep (the U-curve's two extremes and its optimum) and
its ``ReplayStats`` asserted identical, so the recorded curve is
backed by both engines.

The functional equivalence of grouped and monolithic aggregation is
asserted too (the optimization must not change results).
"""

import numpy as np

from repro.core.aggregation import aggregate_advanced
from repro.core.grouping import aggregate_grouped
from repro.core.streams import (
    advanced_stream_chunks,
    grouped_stream,
    grouped_stream_chunks,
)
from repro.sgx.cost import CostModel, CostParameters

from .common import make_synthetic_updates, print_table, save_results

N_CLIENTS = 64
K = 64
D = 512
H_SWEEP = (1, 2, 4, 8, 16, 32, 64)

# Scaled machine (see EXPERIMENTS.md): L2 2 KB / L3 8 KB / EPC 32 KB,
# so the h = 64 monolithic working set (64 KB) is 2x the EPC, matching
# the paper's 122 MB-vs-96 MB regime at n = 10^4.
MACHINE = CostParameters(
    l2_bytes=2 * 1024, l2_assoc=4,
    l3_bytes=8 * 1024, l3_assoc=4,
    epc_bytes=32 * 1024,
)


def test_fig12_grouping_optimization(benchmark):
    def experiment():
        series = {"h": [], "cycles": [], "page_faults": []}
        for h in H_SWEEP:
            report = CostModel(MACHINE).charge_chunks(
                grouped_stream_chunks(N_CLIENTS, K, D, h)
            )
            series["h"].append(h)
            series["cycles"].append(report.cycles)
            series["page_faults"].append(report.page_faults)
        mono = CostModel(MACHINE).charge_chunks(
            advanced_stream_chunks(N_CLIENTS * K, D)
        )
        series["monolithic_cycles"] = mono.cycles
        return series

    series = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [series["h"][i], series["cycles"][i], series["page_faults"][i]]
        for i in range(len(H_SWEEP))
    ]
    print_table(
        f"Figure 12: grouped Advanced cycles vs h (n={N_CLIENTS}, k={K}, d={D})",
        ["h", "cycles", "EPC page faults"], rows,
    )
    save_results("fig12", series)
    benchmark.extra_info.update(series)

    # Functional equivalence at the optimum.
    updates = make_synthetic_updates(N_CLIENTS, K, D, seed=0)
    best_h = series["h"][int(np.argmin(series["cycles"]))]
    assert np.allclose(
        aggregate_grouped(updates, D, best_h),
        aggregate_advanced(updates, D),
    )

    # Engine equivalence on a sample of the curve: both replayers must
    # agree access-for-access at the extremes and the optimum.
    for h in sorted({H_SWEEP[0], best_h, H_SWEEP[-1]}):
        vec = CostModel(MACHINE)
        vec_report = vec.charge_chunks(
            grouped_stream_chunks(N_CLIENTS, K, D, h)
        )
        ref = CostModel(MACHINE, engine="reference")
        ref_report = ref.charge_lines(grouped_stream(N_CLIENTS, K, D, h))
        assert vec.stats == ref.stats, (
            f"h={h}: vectorized ReplayStats diverged from reference"
        )
        assert vec_report == ref_report

    # Shape: U-curve with an interior optimum beating both extremes.
    costs = series["cycles"]
    assert 1 < best_h < N_CLIENTS
    assert min(costs) < costs[0] / 2        # beats tiny groups
    assert min(costs) < costs[-1] / 2       # beats monolithic
    # Large-h degradation is paging-driven.
    assert series["page_faults"][-1] > series["page_faults"][len(H_SWEEP) // 2]
