"""Extension experiment: quantized uploads (bandwidth vs utility).

Not a paper figure -- the paper's Section 6 motivates sparsification by
the 1-3 orders of magnitude of communication savings; this extension
quantifies the full upload pipeline this repository implements
(top-k sparsify -> QSGD quantize -> AE-encrypt -> enclave dequantize ->
oblivious aggregate): final accuracy and per-client upload bytes as a
function of quantization bits.
"""

import numpy as np

from repro.core.olive import OliveConfig, OliveSystem
from repro.fl.client import TrainingConfig
from repro.fl.datasets import SPECS, SyntheticClassData, partition_clients
from repro.fl.models import build_model
from repro.fl.quantize import dense_wire_bytes

from .common import print_table, save_results

BITS_SWEEP = (None, 12, 8, 4)  # None = exact float uploads
ROUNDS = 6
SPARSE_RATIO = 0.2


def _run(bits):
    gen = SyntheticClassData(SPECS["tiny"], seed=0)
    clients = partition_clients(gen, 20, 50, 3, seed=0)
    system = OliveSystem(
        build_model("tiny_mlp", seed=0), clients,
        OliveConfig(
            sample_rate=0.8, noise_multiplier=0.5, aggregator="advanced",
            quantize_bits=bits,
            training=TrainingConfig(local_epochs=3, local_lr=0.3,
                                    sparse_ratio=SPARSE_RATIO, clip=2.0),
        ),
        seed=0,
    )
    system.run(ROUNDS)
    x, y = gen.balanced(25, np.random.default_rng(3))
    d = system.d
    k = int(np.ceil(SPARSE_RATIO * d))
    if bits is None:
        upload_bytes = 4 + 12 * k          # float wire format
    else:
        upload_bytes = 12 + (4 + (bits + 7) // 8) * k
    return system.evaluate(x, y), upload_bytes, d


def test_ext_quantization_tradeoff(benchmark):
    def experiment():
        series = {"bits": [], "accuracy": [], "upload_bytes": [],
                  "compression_vs_dense": []}
        for bits in BITS_SWEEP:
            accuracy, upload_bytes, d = _run(bits)
            series["bits"].append("float64" if bits is None else bits)
            series["accuracy"].append(accuracy)
            series["upload_bytes"].append(upload_bytes)
            series["compression_vs_dense"].append(
                dense_wire_bytes(d) / upload_bytes
            )
        return series

    series = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [series["bits"][i], series["accuracy"][i],
         series["upload_bytes"][i],
         f"{series['compression_vs_dense'][i]:.1f}x"]
        for i in range(len(BITS_SWEEP))
    ]
    print_table(
        f"Extension: quantized uploads (alpha={SPARSE_RATIO}, {ROUNDS} rounds)",
        ["bits", "accuracy", "upload bytes", "vs dense float32"], rows,
    )
    save_results("ext_quantization", series)
    benchmark.extra_info.update(series)

    # 8-bit uploads shrink the wire without collapsing utility.
    exact_acc = series["accuracy"][0]
    eight_bit_acc = series["accuracy"][2]
    assert eight_bit_acc > exact_acc - 0.15
    assert series["upload_bytes"][2] < series["upload_bytes"][0] / 2
    # Compression is monotone (non-increasing) in fewer bits; 8 and 4
    # bits coincide because levels are byte-aligned on the wire.
    assert (series["upload_bytes"][1] >= series["upload_bytes"][2]
            >= series["upload_bytes"][3])
