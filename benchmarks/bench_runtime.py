"""Cohort-runtime benchmark: parallel execution vs serial reference.

Runs one OLIVE round over a straggler-laden cohort (every client
carries a fixed injected network delay, the dominant cost of real
cross-device rounds) through the serial and thread executors and
reports the wall-clock speedup from overlapping client latency.  The
workload is latency-bound by construction, so the measured speedup is
stable on any core count -- including single-vCPU CI runners, where
compute parallelism would be noise.

Also measures the fault-injection path (dropouts, corrupt/replayed
ciphertexts, transient failures with retries) against the clean round
to show fault handling is not on the critical path.

Every timed configuration is asserted **bit-identical** to the serial
reference before any number is reported -- a speedup that changed the
results would be a bug, not a win.

Set ``RUNTIME_BENCH_QUICK=1`` to run the reduced CI workload.
"""

import os
import time

import numpy as np

from repro.core.olive import OliveConfig, OliveSystem
from repro.fl.client import TrainingConfig
from repro.fl.datasets import SPECS, SyntheticClassData, partition_clients
from repro.fl.models import build_model
from repro.runtime import FaultConfig, RuntimeConfig

from .common import print_table, save_results

QUICK = bool(os.environ.get("RUNTIME_BENCH_QUICK"))
N_CLIENTS = 32
SAMPLES_PER_CLIENT = 20 if QUICK else 40
#: Fixed per-client injected latency: large against tiny-MLP training
#: time, small against total bench budget.
DELAY_S = 0.05 if QUICK else 0.1
WORKERS = 16
ROUNDS = 1 if QUICK else 2
MIN_PARALLEL_SPEEDUP = 3.0

TRAIN = TrainingConfig(local_epochs=1, local_lr=0.1, batch_size=16,
                       sparse_ratio=0.1, clip=1.0)

STRAGGLERS = FaultConfig(straggler_rate=1.0, straggler_delay_s=DELAY_S,
                         straggler_jitter=False)


def _run(executor, workers=1, faults=STRAGGLERS, **runtime_kwargs):
    """Build a system, run ROUNDS rounds, return (wall_seconds, logs)."""
    gen = SyntheticClassData(SPECS["tiny"], seed=0)
    clients = partition_clients(gen, N_CLIENTS, SAMPLES_PER_CLIENT, 2,
                                seed=0)
    runtime = RuntimeConfig(
        executor=executor, workers=workers, faults=faults,
        **runtime_kwargs,
    )
    system = OliveSystem(
        build_model("tiny_mlp", seed=0), clients,
        OliveConfig(sample_rate=1.0, noise_multiplier=0.8,
                    aggregator="advanced", training=TRAIN),
        seed=1, runtime=runtime,
    )
    with system:
        t0 = time.perf_counter()
        logs = system.run(ROUNDS)
        wall = time.perf_counter() - t0
    return wall, logs


def _assert_identical(a_logs, b_logs):
    for a, b in zip(a_logs, b_logs):
        assert a.participants == b.participants
        assert np.array_equal(a.weights_after, b.weights_after)


def test_runtime_parallel_speedup():
    serial_wall, serial_logs = _run("serial")

    configs = [("thread", WORKERS)]
    if not QUICK:
        configs += [("thread", 8), ("process", 8)]

    series = [{
        "executor": "serial", "workers": 1,
        "wall_seconds_run": serial_wall, "speedup": 1.0,
    }]
    speedups = {}
    for executor, workers in configs:
        wall, logs = _run(executor, workers)
        _assert_identical(serial_logs, logs)
        speedup = serial_wall / wall
        speedups[(executor, workers)] = speedup
        series.append({
            "executor": executor, "workers": workers,
            "wall_seconds_run": wall, "speedup": speedup,
        })

    # Fault path: dropouts + transport faults + retried transients on
    # top of the stragglers, through the parallel executor.
    faults = FaultConfig(
        straggler_rate=1.0, straggler_delay_s=DELAY_S,
        straggler_jitter=False, dropout_rate=0.1, corrupt_rate=0.1,
        replay_rate=0.1, transient_failure_rate=0.1,
    )
    fault_wall, fault_logs = _run("thread", WORKERS, faults=faults,
                                  backoff_base_s=0.0)
    # Fault isolation holds per round from identical start weights, so
    # compare round 0 (after it, the faulty trajectory legitimately
    # diverges by the excluded contributions).
    clean, faulty = serial_logs[0], fault_logs[0]
    survivors = set(faulty.updates)
    assert survivors <= set(clean.updates)
    for cid in survivors:
        assert np.array_equal(clean.updates[cid].values,
                              faulty.updates[cid].values)
    series.append({
        "executor": "thread+faults", "workers": WORKERS,
        "wall_seconds_run": fault_wall,
        "speedup": serial_wall / fault_wall,
    })

    print_table(
        f"Cohort runtime: {N_CLIENTS} clients, {DELAY_S * 1e3:.0f} ms "
        f"injected latency each, {ROUNDS} round(s)",
        ["executor", "workers", "wall s", "speedup vs serial"],
        [[r["executor"], r["workers"], f"{r['wall_seconds_run']:.3f}",
          f"{r['speedup']:.1f}x"] for r in series],
    )

    parallel_speedup = speedups[("thread", WORKERS)]
    save_results("runtime", {
        "workload": {
            "n_clients": N_CLIENTS, "delay_s": DELAY_S,
            "rounds": ROUNDS, "workers": WORKERS, "quick": QUICK,
        },
        "series": series,
        "parallel_speedup": parallel_speedup,
        "fault_round_seconds": fault_wall,
    })

    # Acceptance bar: overlapping a 32-client straggler cohort on 16
    # workers must hide >= 3x of the serial latency (the floor is also
    # enforced by the CI regression gate on the saved payload).
    assert parallel_speedup >= MIN_PARALLEL_SPEEDUP
    # Fault handling stays off the critical path: the faulty parallel
    # round must still beat serial by the same floor.
    assert serial_wall / fault_wall >= MIN_PARALLEL_SPEEDUP
