"""Ablation: why top-k despite the leak?  Sparsifier utility trade-off.

random-k sparsification is trivially oblivious (the index choice is
data-independent) and threshold keeps large coordinates too, so one
could ask why OLIVE bothers defending top-k.  This ablation trains the
same federated task with each sparsifier at the same bandwidth and
reports final accuracy plus the gradient-mass each sparsifier retains:
top-k dominates utility, which is why FL deployments use it and why an
oblivious aggregator (rather than a leak-free sparsifier) is the right
fix -- the paper's implicit design argument.
"""

import numpy as np

from repro.core.olive import OliveConfig, OliveSystem
from repro.fl.client import TrainingConfig, local_train, sparsify_delta
from repro.fl.datasets import SPECS, SyntheticClassData, partition_clients
from repro.fl.models import build_model

from .common import print_table, save_results

SPARSIFIERS = ("top_k", "random_k")
RATIO = 0.1
ROUNDS = 6


def _accuracy_with(sparsifier: str, seed: int = 0) -> float:
    gen = SyntheticClassData(SPECS["tiny"], seed=seed)
    clients = partition_clients(gen, 20, 50, 3, seed=seed)
    system = OliveSystem(
        build_model("tiny_mlp", seed=seed), clients,
        OliveConfig(
            sample_rate=0.8, noise_multiplier=0.5, aggregator="advanced",
            training=TrainingConfig(
                local_epochs=3, local_lr=0.3, batch_size=16,
                sparse_ratio=RATIO, clip=2.0, sparsifier=sparsifier,
            ),
        ),
        seed=seed,
    )
    system.run(ROUNDS)
    x, y = gen.balanced(25, np.random.default_rng(seed + 3))
    return system.evaluate(x, y)


def _retained_mass(sparsifier: str) -> float:
    gen = SyntheticClassData(SPECS["tiny"], seed=0)
    clients = partition_clients(gen, 4, 50, 3, seed=0)
    model = build_model("tiny_mlp", seed=0)
    config = TrainingConfig(sparse_ratio=RATIO, sparsifier=sparsifier,
                            local_lr=0.3, local_epochs=3)
    rng = np.random.default_rng(0)
    ratios = []
    for c in clients:
        delta = local_train(model, model.get_flat(), c, config, rng)
        _, values = sparsify_delta(delta, config, rng)
        total = np.linalg.norm(delta)
        ratios.append(float(np.linalg.norm(values) / total) if total else 0.0)
    return float(np.mean(ratios))


def test_ablation_sparsifier_tradeoff(benchmark):
    def experiment():
        return {
            s: {"accuracy": _accuracy_with(s), "retained_mass": _retained_mass(s)}
            for s in SPARSIFIERS
        }

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [s, result[s]["accuracy"], result[s]["retained_mass"],
         "leaks (needs oblivious agg.)" if s == "top_k" else "leak-free"]
        for s in SPARSIFIERS
    ]
    print_table(
        f"Ablation: sparsifier utility at ratio={RATIO}",
        ["sparsifier", "final accuracy", "retained grad mass", "side channel"],
        rows,
    )
    save_results("ablation_sparsifiers", result)
    benchmark.extra_info.update(result)

    # top-k keeps far more gradient mass at equal bandwidth...
    assert result["top_k"]["retained_mass"] > (
        1.5 * result["random_k"]["retained_mass"]
    )
    # ...and at least matches random-k's utility on the learned task.
    assert result["top_k"]["accuracy"] >= result["random_k"]["accuracy"] - 0.1
