"""Figure 8: attack under cacheline-granularity (64 B) observation.

Published SGX attacks observe addresses at cacheline resolution, i.e.
16 four-byte weights collapse into one observable line.  Paper shape:
slightly lower accuracy than the word-granularity adversary, but the
attack remains effective -- the known SGX leakage level suffices.
"""

from repro.attack.pipeline import AttackConfig, chance_top1, run_attack

from .common import print_table, run_traced_fl, save_results

DATASET = "mnist"
GRANULARITIES = ("word", "cacheline")


def test_fig8_cacheline_leakage(benchmark):
    def experiment():
        system, model, logs, test_data, training, true_labels = (
            run_traced_fl(DATASET, 2, fixed=True, seed=4)
        )
        series = {}
        for granularity in GRANULARITIES:
            res = run_attack(
                logs, model, test_data, training, true_labels, system.d,
                AttackConfig(method="jac", granularity=granularity,
                             known_label_count=2),
            )
            series[granularity] = {
                "all": res.all_accuracy, "top1": res.top1_accuracy,
            }
        series["chance"] = chance_top1(true_labels, len(test_data))
        return series

    series = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [g, series[g]["all"], series[g]["top1"]] for g in GRANULARITIES
    ]
    print_table(
        f"Figure 8 ({DATASET}): word vs cacheline observation",
        ["granularity", "all", "top-1"], rows,
    )
    save_results("fig8", series)
    benchmark.extra_info.update(
        {g: series[g]["top1"] for g in GRANULARITIES}
    )

    # Shape: cacheline attack still decisively beats chance, at most
    # slightly below the word-level adversary.
    assert series["cacheline"]["top1"] > 3 * series["chance"]
    assert series["cacheline"]["all"] >= series["word"]["all"] - 0.3
