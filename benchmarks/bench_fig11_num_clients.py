"""Figure 11: aggregation cost vs number of clients at LOW sparsity.

At alpha = 0.1 the per-client payload is large; growing n inflates the
nk term that Advanced must sort (poor locality) while Baseline's
sequential sweeps stay cache-friendly.  Paper shape: Advanced's
advantage shrinks as n grows and Baseline eventually overtakes it --
an effect of the memory hierarchy, reproduced here by charging the
algorithms' structural address streams to the scaled SGX cost model
(see EXPERIMENTS.md for the scaling).

Wall-clock of the vectorized implementations is also reported for
reference, but the cycle model is the series that carries the paper's
cache/EPC story.
"""

import time

import pytest

from repro.core.aggregation import aggregate_advanced, aggregate_baseline
from repro.core.streams import advanced_stream, baseline_stream
from repro.sgx.cost import CostModel, CostParameters

from .common import make_synthetic_updates, print_table, save_results

D = 1024              # paper: 50,890 (MNIST MLP); scaled with the machine
ALPHA = 0.1
N_SWEEP = (16, 64, 256)

# Scaled machine for this figure: the paper's n = 10^4 point needs
# ~122 MB of sort buffer against a 96 MB EPC; here n = 256 needs
# 256 KB against a 128 KB EPC -- the same working-set/EPC ratio.
MACHINE = CostParameters(
    l2_bytes=4 * 1024, l2_assoc=4,
    l3_bytes=32 * 1024, l3_assoc=8,
    epc_bytes=128 * 1024,
)


def test_fig11_cost_vs_num_clients(benchmark):
    def experiment():
        k = int(ALPHA * D)
        series = {"n": [], "baseline_cycles": [], "advanced_cycles": [],
                  "baseline_wall": [], "advanced_wall": [],
                  "advanced_page_faults": []}
        for n in N_SWEEP:
            nk = n * k
            base = CostModel(MACHINE).charge_lines(baseline_stream(nk, D))
            adv = CostModel(MACHINE).charge_lines(advanced_stream(nk, D))
            updates = make_synthetic_updates(n, k, D, seed=0)
            t0 = time.perf_counter()
            aggregate_baseline(updates, D)
            t_base = time.perf_counter() - t0
            t0 = time.perf_counter()
            aggregate_advanced(updates, D)
            t_adv = time.perf_counter() - t0
            series["n"].append(n)
            series["baseline_cycles"].append(base.cycles)
            series["advanced_cycles"].append(adv.cycles)
            series["baseline_wall"].append(t_base)
            series["advanced_wall"].append(t_adv)
            series["advanced_page_faults"].append(adv.page_faults)
        return series

    series = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [series["n"][i], series["baseline_cycles"][i],
         series["advanced_cycles"][i],
         series["advanced_cycles"][i] / series["baseline_cycles"][i]]
        for i in range(len(N_SWEEP))
    ]
    print_table(
        f"Figure 11: simulated cycles vs n (alpha={ALPHA}, d={D})",
        ["n", "baseline cycles", "advanced cycles", "adv/base ratio"], rows,
    )
    save_results("fig11", series)
    benchmark.extra_info.update(series)

    # Shape: Advanced loses ground to Baseline as n grows (the ratio of
    # advanced/baseline cost increases with n), the Figure 11 story.
    ratios = [
        series["advanced_cycles"][i] / series["baseline_cycles"][i]
        for i in range(len(N_SWEEP))
    ]
    assert ratios[-1] > 2 * ratios[0]
    # The collapse is driven by EPC paging, as in the paper's analysis.
    assert series["advanced_page_faults"][-1] > 0
    assert series["advanced_page_faults"][0] == 0
