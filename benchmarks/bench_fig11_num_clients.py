"""Figure 11: aggregation cost vs number of clients at LOW sparsity.

At alpha = 0.1 the per-client payload is large; growing n inflates the
nk term that Advanced must sort (poor locality) while Baseline's
sequential sweeps stay cache-friendly.  Paper shape: Advanced's
advantage shrinks as n grows and Baseline eventually overtakes it --
an effect of the memory hierarchy, reproduced here by charging the
algorithms' structural address streams to the scaled SGX cost model
(see EXPERIMENTS.md for the scaling).

The sweep itself is charged through the vectorized replay engine fed
by the chunked numpy stream emitters.  The run additionally times the
sequential reference pipeline (per-access Python generator + Python
LRU, the pre-vectorization implementation) against the vectorized one
on the largest common sweep point, asserts that both engines produce
identical ``ReplayStats``, and records the measured replay speedup in
``bench_results/fig11.json``.

Set ``COST_BENCH_QUICK=1`` (the CI default) to stop the sweep at
n = 256; the full sweep extends to the paper's n = 1000.

Wall-clock of the vectorized implementations is also reported for
reference, but the cycle model is the series that carries the paper's
cache/EPC story.
"""

import os
import time

from repro.core.aggregation import aggregate_advanced, aggregate_baseline
from repro.core.streams import (
    advanced_stream,
    advanced_stream_chunks,
    baseline_stream,
    baseline_stream_chunks,
)
from repro.sgx.cost import CostModel, CostParameters

from .common import make_synthetic_updates, print_table, save_results

QUICK = bool(os.environ.get("COST_BENCH_QUICK"))
D = 1024              # paper: 50,890 (MNIST MLP); scaled with the machine
ALPHA = 0.1
N_SWEEP = (16, 64, 256) if QUICK else (16, 64, 256, 1000)
#: Sweep point at which the reference pipeline is raced against the
#: vectorized one.  The reference replayer alone needs minutes at
#: n = 1000, so the head-to-head stays on n = 256 (15.8M accesses on
#: the Advanced stream) in both modes.
SPEEDUP_N = 256
#: Noise-tolerant floor for the asserted speedup: shared CI runners
#: time the single-threaded reference loop with up to ~2x jitter, so
#: the hard assert sits well below the ~10x measured on a quiet
#: machine; the measured value is what gets recorded and gated by
#: benchmarks/check_regression.py.
MIN_SPEEDUP = 4.0

# Scaled machine for this figure: the paper's n = 10^4 point needs
# ~122 MB of sort buffer against a 96 MB EPC; here n = 256 needs
# 256 KB against a 128 KB EPC -- the same working-set/EPC ratio.
MACHINE = CostParameters(
    l2_bytes=4 * 1024, l2_assoc=4,
    l3_bytes=32 * 1024, l3_assoc=8,
    epc_bytes=128 * 1024,
)


def _timed_replay(engine, charge, runs=1):
    """Best-of-``runs`` wall seconds plus the last (model, report)."""
    best = float("inf")
    model = report = None
    for _ in range(runs):
        model = CostModel(MACHINE, engine=engine)
        t0 = time.perf_counter()
        report = charge(model)
        best = min(best, time.perf_counter() - t0)
    return best, model, report


def _measure_speedup(nk: int) -> dict:
    """Reference vs vectorized replay pipeline on both streams.

    Both pipelines replay the same accesses: the reference one drives
    the per-access Python generators through the sequential LRU, the
    vectorized one consumes the chunked numpy emitters.  Equality of
    the resulting ``ReplayStats`` and ``CostReport`` is asserted per
    stream, so the recorded speedup is between replayers that provably
    agree access-for-access.
    """
    out = {}
    for name, gen, chunked in (
        ("baseline", baseline_stream, baseline_stream_chunks),
        ("advanced", advanced_stream, advanced_stream_chunks),
    ):
        t_vec, vec_model, vec_report = _timed_replay(
            "vector", lambda m: m.charge_chunks(chunked(nk, D)), runs=2
        )
        t_ref, ref_model, ref_report = _timed_replay(
            "reference", lambda m: m.charge_lines(gen(nk, D))
        )
        assert vec_model.stats == ref_model.stats, (
            f"{name}: vectorized ReplayStats diverged from reference"
        )
        assert vec_report == ref_report, (
            f"{name}: vectorized CostReport diverged from reference"
        )
        out[f"{name}_ref_seconds"] = round(t_ref, 3)
        out[f"{name}_vec_seconds"] = round(t_vec, 3)
        out[f"{name}_speedup"] = round(t_ref / t_vec, 2)
    return out


def test_fig11_cost_vs_num_clients(benchmark):
    def experiment():
        k = int(ALPHA * D)
        series = {"n": [], "baseline_cycles": [], "advanced_cycles": [],
                  "baseline_wall": [], "advanced_wall": [],
                  "advanced_page_faults": []}
        for n in N_SWEEP:
            nk = n * k
            base = CostModel(MACHINE).charge_chunks(
                baseline_stream_chunks(nk, D)
            )
            adv = CostModel(MACHINE).charge_chunks(
                advanced_stream_chunks(nk, D)
            )
            updates = make_synthetic_updates(n, k, D, seed=0)
            t0 = time.perf_counter()
            aggregate_baseline(updates, D)
            t_base = time.perf_counter() - t0
            t0 = time.perf_counter()
            aggregate_advanced(updates, D)
            t_adv = time.perf_counter() - t0
            series["n"].append(n)
            series["baseline_cycles"].append(base.cycles)
            series["advanced_cycles"].append(adv.cycles)
            series["baseline_wall"].append(t_base)
            series["advanced_wall"].append(t_adv)
            series["advanced_page_faults"].append(adv.page_faults)
        series["quick"] = QUICK
        series.update(_measure_speedup(SPEEDUP_N * k))
        # Headline replay speedup: the Advanced stream dominates this
        # figure's replay time (it is the stream whose locality
        # collapse the figure demonstrates).
        series["replay_speedup"] = series["advanced_speedup"]
        series["replay_speedup_n"] = SPEEDUP_N
        return series

    series = benchmark.pedantic(experiment, rounds=1, iterations=1)
    n_pts = len(series["n"])
    rows = [
        [series["n"][i], series["baseline_cycles"][i],
         series["advanced_cycles"][i],
         series["advanced_cycles"][i] / series["baseline_cycles"][i]]
        for i in range(n_pts)
    ]
    print_table(
        f"Figure 11: simulated cycles vs n (alpha={ALPHA}, d={D})",
        ["n", "baseline cycles", "advanced cycles", "adv/base ratio"], rows,
    )
    print_table(
        f"Replay pipelines at n={SPEEDUP_N} (reference vs vectorized)",
        ["stream", "reference s", "vectorized s", "speedup"],
        [[s, series[f"{s}_ref_seconds"], series[f"{s}_vec_seconds"],
          series[f"{s}_speedup"]] for s in ("baseline", "advanced")],
    )
    save_results("fig11", series)
    benchmark.extra_info.update(series)

    # Shape: Advanced loses ground to Baseline as n grows (the ratio of
    # advanced/baseline cost increases with n), the Figure 11 story.
    ratios = [
        series["advanced_cycles"][i] / series["baseline_cycles"][i]
        for i in range(n_pts)
    ]
    assert ratios[-1] > 2 * ratios[0]
    # The collapse is driven by EPC paging, as in the paper's analysis.
    assert series["advanced_page_faults"][-1] > 0
    assert series["advanced_page_faults"][0] == 0
    # The vectorized replay must beat the sequential reference clearly
    # even under CI timer noise.
    assert series["replay_speedup"] >= MIN_SPEEDUP
