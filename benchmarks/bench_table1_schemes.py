"""Table 1: trust model vs utility across DP-FL schemes.

The paper's Table 1 is qualitative; this benchmark makes it
quantitative: train the same model under the same *central*
(epsilon, delta) budget with

* CDP-FL (trusted server; server-side Gaussian),
* OLIVE (untrusted server + TEE; identical mechanism inside the
  enclave -- the "OLIVE = CDP-FL" claim),
* Shuffle-DP-FL (local noise calibrated through amplification),
* LDP-FL (local noise carrying the full budget per client),

and report final test accuracy.  Expected ordering:
OLIVE == CDP  >  Shuffle  >  LDP.
"""

import numpy as np

from repro.core.olive import OliveConfig, OliveSystem
from repro.dp.ldp import gaussian_ldp_sigma, local_epsilon_for_central
from repro.fl.client import TrainingConfig
from repro.fl.datasets import SPECS, SyntheticClassData, partition_clients
from repro.fl.models import build_model
from repro.fl.server import FederatedSimulation, ServerConfig, run_ldp_round

from .common import print_table, save_results

# Shuffle amplification only bites with hundreds of shuffled reports
# per round (the paper's own caveat about participant counts), so this
# comparison uses a larger cohort of tiny clients.
DATASET = "tiny"
N_CLIENTS = 300
ROUNDS = 4
SAMPLE_RATE = 1.0
CENTRAL_SIGMA = 0.8          # noise multiplier for CDP / OLIVE
CENTRAL_EPSILON = 8.0        # matching budget given to LDP / shuffle
DELTA = 1e-5
TRAIN = TrainingConfig(local_epochs=2, local_lr=0.3, batch_size=16,
                       sparse_ratio=0.3, clip=2.0)


def _data(seed=0):
    gen = SyntheticClassData(SPECS[DATASET], seed=seed)
    clients = partition_clients(gen, N_CLIENTS, 50, 3, seed=seed)
    x, y = gen.balanced(30, np.random.default_rng(seed + 1))
    return clients, x, y


def _run_cdp(clients, x, y, seed=0):
    model = build_model("tiny_mlp", seed=seed)
    sim = FederatedSimulation(
        model, clients, training=TRAIN,
        server=ServerConfig(sample_rate=SAMPLE_RATE,
                            noise_multiplier=CENTRAL_SIGMA),
        seed=seed,
    )
    sim.run(ROUNDS)
    return sim.evaluate(x, y)


def _run_olive(clients, x, y, seed=0):
    model = build_model("tiny_mlp", seed=seed)
    system = OliveSystem(
        model, clients,
        OliveConfig(sample_rate=SAMPLE_RATE, noise_multiplier=CENTRAL_SIGMA,
                    aggregator="advanced", training=TRAIN),
        seed=seed,
    )
    system.run(ROUNDS)
    return system.evaluate(x, y), system.accountant.epsilon


def _run_local_noise(clients, x, y, local_sigma, seed=0):
    model = build_model("tiny_mlp", seed=seed)
    rng = np.random.default_rng(seed)
    weights = model.get_flat()
    for _ in range(ROUNDS):
        weights = run_ldp_round(model, weights, clients, TRAIN,
                                local_sigma=local_sigma, rng=rng)
    model.set_flat(weights)
    from repro.fl.models import accuracy

    return accuracy(model, x, y)


def test_table1_utility_comparison(benchmark):
    clients, x, y = _data()

    def experiment():
        per_round_eps = CENTRAL_EPSILON / ROUNDS
        ldp_sigma = gaussian_ldp_sigma(per_round_eps, DELTA)
        shuffle_local_eps = local_epsilon_for_central(
            per_round_eps, N_CLIENTS, DELTA
        )
        shuffle_sigma = gaussian_ldp_sigma(shuffle_local_eps, DELTA)
        cdp_acc = _run_cdp(clients, x, y)
        olive_acc, olive_eps = _run_olive(clients, x, y)
        shuffle_acc = _run_local_noise(clients, x, y, shuffle_sigma)
        ldp_acc = _run_local_noise(clients, x, y, ldp_sigma)
        return {
            "cdp": cdp_acc, "olive": olive_acc, "olive_eps": olive_eps,
            "shuffle": shuffle_acc, "ldp": ldp_acc,
            "ldp_sigma": ldp_sigma, "shuffle_sigma": shuffle_sigma,
        }

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        ["CDP-FL", "trusted server", result["cdp"]],
        ["OLIVE (ours)", "untrusted server + TEE", result["olive"]],
        ["Shuffle DP-FL", "untrusted server + shuffler", result["shuffle"]],
        ["LDP-FL", "untrusted server", result["ldp"]],
    ]
    print_table(
        f"Table 1 (quantified): accuracy at central epsilon~{CENTRAL_EPSILON}",
        ["scheme", "trust model", "accuracy"], rows,
    )
    save_results("table1", result)
    benchmark.extra_info.update(result)

    chance = 1.0 / SPECS[DATASET].n_labels
    # OLIVE matches CDP (same mechanism), both learn.
    assert abs(result["olive"] - result["cdp"]) < 0.25
    assert result["olive"] > chance + 0.1
    # LDP noise is ~sqrt(n) larger than shuffle's.
    assert result["ldp_sigma"] > result["shuffle_sigma"]
    # Utility ordering: the local-noise schemes cannot beat OLIVE here.
    assert result["olive"] >= result["ldp"] - 0.05
