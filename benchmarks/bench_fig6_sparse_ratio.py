"""Figure 6: attack success vs sparse ratio alpha.

Clients hold 2 labels (fixed); the sparse ratio sweeps downward.  Paper
shape: the sparser the gradients, the more label-distinctive the
surviving top-k indices, and the more successful the attack -- at the
paper's 0.3% sparsity on CIFAR-100, success approaches 1.0.
"""

from repro.attack.pipeline import AttackConfig, chance_top1, run_attack

from .common import print_table, run_traced_fl, save_results

SPARSE_RATIOS = (0.3, 0.1, 0.03, 0.01)
DATASET = "mnist"


def test_fig6_sparse_ratio(benchmark):
    def experiment():
        series = {"alpha": [], "all": [], "top1": [], "chance": []}
        for alpha in SPARSE_RATIOS:
            system, model, logs, test_data, training, true_labels = (
                run_traced_fl(DATASET, 2, fixed=True, sparse_ratio=alpha,
                              seed=2)
            )
            res = run_attack(
                logs, model, test_data, training, true_labels, system.d,
                AttackConfig(method="jac", known_label_count=2),
            )
            series["alpha"].append(alpha)
            series["all"].append(res.all_accuracy)
            series["top1"].append(res.top1_accuracy)
            series["chance"].append(chance_top1(true_labels, len(test_data)))
        return series

    series = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [series["alpha"][i], series["all"][i], series["top1"][i]]
        for i in range(len(SPARSE_RATIOS))
    ]
    print_table(
        f"Figure 6 ({DATASET}): attack vs sparse ratio, 2 labels/client",
        ["sparse ratio", "all", "top-1"], rows,
    )
    save_results("fig6", series)
    benchmark.extra_info.update(series)

    # Shape: success at high sparsity (low alpha) >= success at low
    # sparsity, and the sparsest setting is decisively successful.
    assert series["all"][-1] >= series["all"][0] - 0.1
    assert series["all"][-1] > 0.6
    assert series["top1"][-1] > 0.9
