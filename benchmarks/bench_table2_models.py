"""Table 2: datasets and global models.

Verifies the reproduction's model zoo against the paper's reported
parameter counts and dataset shapes, and times one forward/backward
pass per model (the per-client work unit of EncClient).
"""

import numpy as np
import pytest

from repro.fl.datasets import SPECS, SyntheticClassData
from repro.fl.models import build_model, softmax_cross_entropy

from .common import print_table, save_results

PAPER_COUNTS = {
    "mnist": ("MLP", 50_890),
    "cifar10": ("MLP", 197_320),
    "cifar10_cnn": ("CNN", 62_006),
    "purchase100": ("MLP", 44_964),
    "cifar100": ("CNN (ResNet-18 in paper)", 201_588),
}


@pytest.mark.parametrize("dataset", list(PAPER_COUNTS))
def test_table2_models(benchmark, dataset):
    spec = SPECS[dataset]
    model = build_model(spec.model_name, seed=0)
    gen = SyntheticClassData(spec, seed=0)
    rng = np.random.default_rng(0)
    x = gen.sample(rng.integers(0, spec.n_labels, size=16), rng)
    y = rng.integers(0, spec.n_labels, size=16)

    def step():
        logits = model.forward(x, train=True)
        _, dlogits = softmax_cross_entropy(logits, y)
        model.backward(dlogits)
        return logits

    benchmark.pedantic(step, rounds=3, iterations=1)

    arch, paper_params = PAPER_COUNTS[dataset]
    ours = model.num_params
    print_table(
        f"Table 2 row: {dataset}",
        ["dataset", "model", "paper #params", "ours", "#labels"],
        [[dataset, arch, paper_params, ours, spec.n_labels]],
    )
    save_results(f"table2_{dataset}", {
        "dataset": dataset, "paper_params": paper_params, "our_params": ours,
    })
    benchmark.extra_info["params"] = ours

    if dataset in ("mnist", "cifar10_cnn", "purchase100"):
        assert ours == paper_params            # exact reproductions
    else:
        # cifar10 MLP (bias counting) and the cifar100 ResNet-18
        # substitution: within 1% of the paper's count.
        assert abs(ours - paper_params) / paper_params < 0.01
