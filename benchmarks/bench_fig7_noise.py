"""Figure 7: attack success vs DP noise multiplier sigma.

The paper's sobering observation: central-DP noise perturbs the
*released model*, but the side channel observes the raw top-k indices
*before* perturbation, so realistic sigma barely affects the attack
(only extreme sigma degrades it, indirectly, by destroying the global
model the local trainings start from).
"""

from repro.attack.pipeline import AttackConfig, chance_top1, run_attack

from .common import print_table, run_traced_fl, save_results

SIGMAS = (0.0, 1.12, 2.0, 8.0)
DATASET = "mnist"


def test_fig7_noise_multiplier(benchmark):
    def experiment():
        series = {"sigma": [], "all": [], "top1": [], "chance": []}
        for sigma in SIGMAS:
            system, model, logs, test_data, training, true_labels = (
                run_traced_fl(DATASET, 2, fixed=True, noise_multiplier=sigma,
                              seed=3)
            )
            res = run_attack(
                logs, model, test_data, training, true_labels, system.d,
                AttackConfig(method="jac", known_label_count=2),
            )
            series["sigma"].append(sigma)
            series["all"].append(res.all_accuracy)
            series["top1"].append(res.top1_accuracy)
            series["chance"].append(chance_top1(true_labels, len(test_data)))
        return series

    series = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [series["sigma"][i], series["all"][i], series["top1"][i]]
        for i in range(len(SIGMAS))
    ]
    print_table(
        f"Figure 7 ({DATASET}): attack vs noise multiplier sigma",
        ["sigma", "all", "top-1"], rows,
    )
    save_results("fig7", series)
    benchmark.extra_info.update(series)

    # Shape: realistic noise (sigma ~ 1.12) does not rescue privacy.
    no_noise = series["all"][0]
    realistic = series["all"][1]
    assert realistic > no_noise - 0.2
    assert series["top1"][1] > 3 * series["chance"][1]
