"""Microbenchmark: columnar trace engine vs element-at-a-time recording.

Times the traced aggregators in two formulations on the same workload:

* **reference** -- the seed element-at-a-time implementation (one
  scalar ``Trace.record`` per access, scalar ``o_mov``/``o_swap``
  comparators), kept verbatim for before/after comparison;
* **batched** -- the production kernels (stage-batched bitonic sort,
  block-form scans, vectorized appends into the columnar arrays).

Both produce byte-for-byte identical traces (pinned here by signature
digest and in ``tests/test_trace_engine_equivalence.py``); the numbers
quantify the speedup and the storage savings of the structure-of-arrays
layout over one frozen dataclass per access.

Set ``TRACE_BENCH_QUICK=1`` to run a reduced workload (CI).
"""

import os
import sys
import time

import numpy as np

from repro import obs
from repro.core.aggregation import (
    G_REGION,
    G_STAR_REGION,
    M0,
    WEIGHTS_PER_CACHELINE,
    aggregate_advanced_traced,
    aggregate_baseline_traced,
    aggregate_linear_traced,
    next_power_of_two,
)
from repro.oblivious.primitives import o_mov
from repro.oblivious.sort import apply_network_traced, bitonic_network
from repro.sgx.memory import MemoryAccess, Trace, TracedArray

from .common import make_synthetic_updates, print_table, save_results

QUICK = bool(os.environ.get("TRACE_BENCH_QUICK"))
#: Table 1 scaled workload (full) / CI workload (quick).
N, K, D = (8, 10, 128) if QUICK else (20, 30, 600)
MIN_SPEEDUP = 5.0 if QUICK else 10.0


# -- reference recorders (seed element-at-a-time implementations) ------


def ref_linear_traced(updates, d, trace):
    idx = np.concatenate([u.indices for u in updates]).astype(np.int64)
    val = np.concatenate([u.values for u in updates])
    g = TracedArray(G_REGION, list(zip(idx.tolist(), val.tolist())),
                    trace=trace, itemsize=8)
    g_star = TracedArray.zeros(G_STAR_REGION, d, trace=trace, itemsize=4)
    for pos in range(len(g)):
        index, value = g.read(pos)
        current = g_star.read(index)
        g_star.write(index, current + value)
    return np.asarray(g_star.snapshot())


def ref_baseline_traced(updates, d, trace):
    idx = np.concatenate([u.indices for u in updates]).astype(np.int64)
    val = np.concatenate([u.values for u in updates])
    c = WEIGHTS_PER_CACHELINE
    g = TracedArray(G_REGION, list(zip(idx.tolist(), val.tolist())),
                    trace=trace, itemsize=8)
    g_star = TracedArray.zeros(G_STAR_REGION, d, trace=trace, itemsize=4)
    n_lines = (d + c - 1) // c
    for pos in range(len(g)):
        index, value = g.read(pos)
        offset = index % c
        for line in range(n_lines):
            target = min(line * c + offset, d - 1)
            current = g_star.read(target)
            g_star.write(target, o_mov(target == index,
                                       current + value, current))
    return np.asarray(g_star.snapshot())


def ref_advanced_traced(updates, d, trace):
    idx = np.concatenate([u.indices for u in updates]).astype(np.int64)
    val = np.concatenate([u.values for u in updates])
    base = len(idx) + d
    m = next_power_of_two(base)
    g = TracedArray.zeros(G_REGION, m, trace=trace, itemsize=8)
    for pos in range(len(idx)):
        g.write(pos, (int(idx[pos]), float(val[pos])))
    for j in range(d):
        g.write(len(idx) + j, (j, 0.0))
    for pos in range(base, m):
        g.write(pos, (M0, 0.0))
    apply_network_traced(g, bitonic_network(m), key=lambda w: w[0])
    carry_idx, carry_val = g.read(0)
    for pos in range(1, m):
        nxt_idx, nxt_val = g.read(pos)
        flag = nxt_idx == carry_idx
        g.write(pos - 1, o_mov(flag, (M0, 0.0), (carry_idx, carry_val)))
        carry_val = o_mov(flag, carry_val + nxt_val, nxt_val)
        carry_idx = nxt_idx
    g.write(m - 1, (carry_idx, carry_val))
    apply_network_traced(g, bitonic_network(m), key=lambda w: w[0])
    return np.asarray([g.read(j)[1] for j in range(d)])


PAIRS = [
    ("linear", ref_linear_traced, aggregate_linear_traced),
    ("baseline", ref_baseline_traced, aggregate_baseline_traced),
    ("advanced", ref_advanced_traced, aggregate_advanced_traced),
]


def _object_trace_bytes(n_accesses: int) -> int:
    """Storage of the seed object-per-access layout for n accesses."""
    sample = MemoryAccess(region="g_star", offset=123456, op="read")
    # One dataclass instance plus its boxed offset plus the list slot.
    per_access = sys.getsizeof(sample) + sys.getsizeof(sample.offset) + 8
    return n_accesses * per_access


def test_trace_engine_speedup(benchmark):
    updates = make_synthetic_updates(N, K, D, seed=0)

    def experiment():
        series = []
        for name, ref, new in PAIRS:
            ref_trace, new_trace = Trace(), Trace()
            t0 = time.perf_counter()
            out_ref = ref(updates, D, ref_trace)
            t_ref = time.perf_counter() - t0
            t0 = time.perf_counter()
            out_new = new(updates, D, new_trace)
            t_new = time.perf_counter() - t0
            assert np.allclose(out_ref, out_new)
            assert ref_trace.signature_digest() == new_trace.signature_digest()
            n = len(new_trace)
            series.append({
                "aggregator": name,
                "trace_len": n,
                "ref_seconds": t_ref,
                "new_seconds": t_new,
                "speedup": t_ref / t_new,
                "ref_ops_per_sec": n / t_ref,
                "new_ops_per_sec": n / t_new,
                "columnar_bytes": new_trace.nbytes,
                "object_bytes_est": _object_trace_bytes(n),
            })
        return series

    series = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [r["aggregator"], r["trace_len"], f"{r['ref_seconds']:.4f}",
         f"{r['new_seconds']:.4f}", f"{r['speedup']:.1f}x",
         f"{r['new_ops_per_sec']:.3g}",
         f"{r['object_bytes_est'] / max(r['columnar_bytes'], 1):.1f}x"]
        for r in series
    ]
    print_table(
        f"Trace engine: element-at-a-time vs columnar (n={N}, k={K}, d={D})",
        ["aggregator", "accesses", "ref s", "new s", "speedup",
         "ops/s (new)", "memory saved"],
        rows,
    )
    save_results("trace_engine", {
        "workload": {"n": N, "k": K, "d": D, "quick": QUICK},
        "series": series,
    })
    benchmark.extra_info["series"] = series

    by_name = {r["aggregator"]: r for r in series}
    # The acceptance bar: traced advanced >= 10x faster (5x quick mode),
    # with identical traces (asserted access-for-access above).
    assert by_name["advanced"]["speedup"] >= MIN_SPEEDUP
    # Columnar storage is far smaller than one object per access.
    for r in series:
        assert r["columnar_bytes"] < r["object_bytes_est"]


#: Telemetry may cost at most this fraction of the traced advanced
#: kernel when disabled (the production default).
MAX_TELEMETRY_OVERHEAD = 0.02


def test_telemetry_overhead_guard():
    """Disabled telemetry must be unmeasurable on the traced hot loop.

    Bounds the overhead analytically: (number of spans the instrumented
    Table-1 traced advanced aggregation opens) x (measured cost of one
    disabled-path span) must stay under 2% of the kernel's own wall
    time.  The disabled path is one attribute check returning a shared
    no-op context manager, so this holds with orders of magnitude of
    margin -- the assert catches anyone adding per-element spans or
    fattening the disabled path.
    """
    updates = make_synthetic_updates(N, K, D, seed=0)
    tel = obs.get_telemetry()
    prev_enabled, prev_sinks = tel.enabled, list(tel.sinks)
    tel.configure(enabled=False, sinks=[])
    try:
        def timed_kernel():
            trace = Trace()
            t0 = time.perf_counter()
            aggregate_advanced_traced(updates, D, trace)
            return time.perf_counter() - t0

        t_kernel = min(timed_kernel() for _ in range(3))

        # How many spans would one such kernel call open when enabled?
        sink = obs.MemorySink()
        with obs.session(sinks=[sink], keep_state=True):
            aggregate_advanced_traced(updates, D, Trace())
        n_spans = len(sink.spans())
        assert n_spans >= 1  # the kernel is instrumented

        # Measured cost of the disabled fast path per span and counter.
        reps = 100_000
        t0 = time.perf_counter()
        for _ in range(reps):
            with obs.span("noop", n=reps):
                pass
            obs.add("noop.counter")
        per_span = (time.perf_counter() - t0) / reps

        overhead = (n_spans * per_span) / t_kernel
    finally:
        tel.configure(enabled=prev_enabled, sinks=prev_sinks)

    print_table(
        "Telemetry no-op overhead on traced advanced "
        f"(n={N}, k={K}, d={D})",
        ["kernel s", "spans/call", "noop span s", "overhead", "budget"],
        [[f"{t_kernel:.4f}", n_spans, f"{per_span:.3g}",
          f"{overhead:.5%}", f"{MAX_TELEMETRY_OVERHEAD:.0%}"]],
    )
    save_results("telemetry_overhead", {
        "workload": {"n": N, "k": K, "d": D, "quick": QUICK},
        "kernel_seconds": t_kernel,
        "spans_per_call": n_spans,
        "noop_span_seconds": per_span,
        "overhead_fraction": overhead,
        "budget_fraction": MAX_TELEMETRY_OVERHEAD,
    })
    assert overhead < MAX_TELEMETRY_OVERHEAD
