"""Make the src layout importable without installation.

`pip install -e .` requires the `wheel` package for PEP 517 editable
builds, which is unavailable in offline environments; `python setup.py
develop` works there instead.  This shim keeps `pytest` self-sufficient
either way.
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
